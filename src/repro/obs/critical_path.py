"""Critical-path latency attribution over span trees.

Answers the question the paper's figures keep asking: *where did the
query's time go?*  Given a query's root span, the walk below attributes
every simulated second of its duration to exactly one category —
queueing, network, disk, or compute — along the **critical chain**: the
sequence of child spans that actually determined when the parent
finished.

The algorithm (fork-join critical path): walk a span's children from the
latest-finishing backwards.  The child that ends last is on the critical
chain; its interval is attributed recursively, then the cursor moves to
that child's start and the next-latest child still ending before the
cursor is considered (children overlapping a later critical child are
clipped — concurrent work hidden behind the last finisher contributed
nothing to the latency).  Time inside the parent not covered by any
critical child is the parent's *self time* and goes to the parent's own
category.  By construction the attribution sums exactly to the root
span's duration.
"""

from __future__ import annotations

from repro.obs.tracer import Span

#: Every attribution maps these keys to seconds (summing to the latency).
ATTRIBUTION_CATEGORIES = ("queueing", "network", "disk", "compute")


def attribute_span(root: Span) -> dict[str, float]:
    """Attribute a finished span's duration to the four categories.

    Unfinished descendants (e.g. background population still in flight
    when the reply arrived) are ignored; work outside ``[root.start,
    root.end]`` is clipped away, so the values sum to ``root.duration``.
    """
    out = {category: 0.0 for category in ATTRIBUTION_CATEGORIES}
    if root.end is None or root.end <= root.start:
        return out
    _walk(root, root.start, root.end, out)
    return out


def _walk(span: Span, start: float, end: float, out: dict[str, float]) -> None:
    """Attribute the clipped interval ``[start, end]`` of ``span``."""
    cursor = end
    child_time = 0.0
    finished = [child for child in span.children if child.end is not None]
    for child in sorted(finished, key=lambda c: (c.end, c.start), reverse=True):
        child_end = min(child.end, cursor)  # type: ignore[type-var]
        child_start = max(child.start, start)
        if child_end <= child_start:
            continue  # hidden behind a later critical child, or out of range
        _walk(child, child_start, child_end, out)
        child_time += child_end - child_start
        cursor = child_start
        if cursor <= start:
            break
    self_time = (end - start) - child_time
    if self_time > 0.0:
        category = span.category if span.category in out else "compute"
        out[category] += self_time


def attribution_fractions(attribution: dict[str, float]) -> dict[str, float]:
    """Normalize an attribution (seconds) to fractions summing to 1.

    Returns all-zero fractions for an empty/zero attribution.
    """
    total = sum(attribution.values())
    if total <= 0.0:
        return {category: 0.0 for category in ATTRIBUTION_CATEGORIES}
    return {
        category: attribution.get(category, 0.0) / total
        for category in ATTRIBUTION_CATEGORIES
    }

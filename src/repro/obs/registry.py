"""Time-series metrics registry: gauges sampled on a simulated-time grid.

The point-in-time :func:`repro.monitor.snapshot` answers "what does the
cluster look like *now*"; this registry answers "how did it get there" —
per-node cache occupancy, queue depth, hit rate, freshness pressure and
network bytes recorded every ``interval`` seconds of simulated time.

Sampling is **passive**: instead of scheduling wake-up events (which
would keep ``Simulator.run()`` from ever draining and could perturb
event ordering), the registry registers a ``tick hook`` on the simulator
and emits a sample whenever the clock crosses a grid point.  Samples are
stamped at the grid time; the values are the state after the event that
crossed it — for a discrete-event simulation that is the state that held
for the whole preceding interval.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import SimulationError


class TimeSeries:
    """One named sequence of (simulated time, value) points."""

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str):
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def record(self, at: float, value: float) -> None:
        self.times.append(at)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.values)

    def last(self) -> float:
        if not self.values:
            raise SimulationError(f"series {self.name!r} has no samples")
        return self.values[-1]

    def first(self) -> float:
        if not self.values:
            raise SimulationError(f"series {self.name!r} has no samples")
        return self.values[0]

    def peak(self) -> float:
        if not self.values:
            raise SimulationError(f"series {self.name!r} has no samples")
        return max(self.values)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "times": list(self.times), "values": list(self.values)}


class MetricsRegistry:
    """Named gauges + their sampled time series for one simulator."""

    def __init__(self, sim):
        self.sim = sim
        self._gauges: dict[str, Callable[[], float]] = {}
        self.series: dict[str, TimeSeries] = {}
        self.interval = 0.0
        self._next_sample: float | None = None
        self._hooked = False

    # -- registration ------------------------------------------------------

    def gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register (or replace) a gauge; sampled on every grid crossing."""
        self._gauges[name] = fn
        self.series.setdefault(name, TimeSeries(name))

    def record(self, name: str, value: float, at: float | None = None) -> None:
        """Record one manual point outside the sampling grid."""
        series = self.series.setdefault(name, TimeSeries(name))
        series.record(self.sim.now if at is None else at, float(value))

    # -- sampling ----------------------------------------------------------

    def sample(self, at: float | None = None) -> None:
        """Read every gauge once, stamping points at ``at`` (default: now)."""
        stamp = self.sim.now if at is None else at
        for name, fn in self._gauges.items():
            self.series[name].record(stamp, float(fn()))

    def start(self, interval: float) -> None:
        """Begin periodic sampling every ``interval`` simulated seconds."""
        if interval <= 0:
            raise SimulationError(f"sample interval must be positive, got {interval}")
        self.interval = interval
        self._next_sample = self.sim.now + interval
        if not self._hooked:
            self.sim.tick_hooks.append(self._on_tick)
            self._hooked = True

    def stop(self) -> None:
        """Stop periodic sampling (recorded series are kept)."""
        if self._hooked:
            self.sim.tick_hooks.remove(self._on_tick)
            self._hooked = False
        self._next_sample = None

    def _on_tick(self, now: float) -> None:
        while self._next_sample is not None and now >= self._next_sample:
            self.sample(at=self._next_sample)
            self._next_sample += self.interval

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form: series name -> {times, values}."""
        return {name: series.to_dict() for name, series in sorted(self.series.items())}

    def format_table(self, names: list[str] | None = None, last: int = 5) -> str:
        """A small text table of the most recent samples per series."""
        chosen = sorted(self.series) if names is None else names
        width = max((len(name) for name in chosen), default=6)
        lines = [f"{'series':>{width}}  {'n':>5}  last {last} samples"]
        for name in chosen:
            series = self.series.get(name)
            if series is None or not len(series):
                lines.append(f"{name:>{width}}  {0:>5}  (no samples)")
                continue
            tail = ", ".join(f"{v:.4g}" for v in series.values[-last:])
            lines.append(f"{name:>{width}}  {len(series):>5}  {tail}")
        return "\n".join(lines)

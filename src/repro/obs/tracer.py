"""A dependency-free span tracer over the simulated clock.

A :class:`Span` is one named interval of simulated time attributed to a
*category* (queueing / network / disk / compute) on one *node*, linked to
a parent span.  The spans of one client query form a tree rooted at the
``query`` span; :mod:`repro.obs.critical_path` walks that tree to explain
where the latency went and :mod:`repro.obs.export` serializes it for a
trace viewer.

Design constraints:

* **Near-zero overhead when disabled** — every instrumentation site does
  ``span = tracer.begin(...)`` / ``tracer.end(span)``; with tracing off,
  ``begin`` is a single attribute check returning ``None`` and ``end`` of
  ``None`` is a no-op.  No timestamps are read, nothing is allocated.
* **Deterministic** — span ids are a plain counter and timestamps come
  from the simulator, so a fixed seed yields an identical span tree.
* **Passive** — the tracer never creates simulation events; it cannot
  perturb event ordering or results.
"""

from __future__ import annotations

import itertools
from typing import Any, Iterator

#: The categories :mod:`repro.obs.critical_path` attributes time to.
#: Instrumentation sites should pick one of these for every span.
SPAN_CATEGORIES = ("queueing", "network", "disk", "compute")


class Span:
    """One traced interval of simulated time.

    ``end`` is ``None`` while the span is open.  Children are recorded on
    the parent at creation so per-query trees need no re-indexing.
    """

    __slots__ = (
        "span_id",
        "name",
        "category",
        "node",
        "query_id",
        "start",
        "end",
        "parent",
        "children",
        "attrs",
    )

    def __init__(
        self,
        span_id: int,
        name: str,
        category: str,
        start: float,
        end: float | None,
        parent: "Span | None",
        node: str | None,
        query_id: int | None,
        attrs: dict[str, Any] | None,
    ):
        self.span_id = span_id
        self.name = name
        self.category = category
        self.start = start
        self.end = end
        self.parent = parent
        self.node = node
        self.query_id = query_id
        self.children: list[Span] = []
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Span length in simulated seconds (0.0 while still open)."""
        return 0.0 if self.end is None else self.end - self.start

    def key(self) -> tuple:
        """Structural identity, for determinism comparisons across runs."""
        return (
            self.name,
            self.category,
            self.node,
            self.query_id,
            self.start,
            self.end,
            None if self.parent is None else self.parent.span_id,
        )

    def walk(self) -> Iterator["Span"]:
        """This span and all descendants, depth-first in creation order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def __repr__(self) -> str:
        state = "..." if self.end is None else f"{self.duration * 1e3:.3f}ms"
        return (
            f"Span({self.name!r}, cat={self.category}, node={self.node}, "
            f"q={self.query_id}, t={self.start:.6f}, {state})"
        )


class Tracer:
    """Collects spans against one simulator's clock."""

    def __init__(self, sim, enabled: bool = False, max_spans: int = 2_000_000):
        self.sim = sim
        self.enabled = enabled
        self.max_spans = max_spans
        self.spans: list[Span] = []
        #: True once ``max_spans`` was hit and spans were dropped.
        self.truncated = False
        self._ids = itertools.count()

    # -- recording ---------------------------------------------------------

    def begin(
        self,
        name: str,
        category: str,
        *,
        parent: Span | None = None,
        node: str | None = None,
        query_id: int | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span | None:
        """Open a span at the current simulated time; close with :meth:`end`."""
        if not self.enabled:
            return None
        return self._make(name, category, self.sim.now, None, parent, node, query_id, attrs)

    def end(self, span: Span | None, attrs: dict[str, Any] | None = None) -> None:
        """Close an open span at the current simulated time (``None`` ok)."""
        if span is None or span.end is not None:
            return
        span.end = self.sim.now
        if attrs:
            span.attrs = {**(span.attrs or {}), **attrs}

    def record(
        self,
        name: str,
        category: str,
        start: float,
        end: float,
        *,
        parent: Span | None = None,
        node: str | None = None,
        query_id: int | None = None,
        attrs: dict[str, Any] | None = None,
    ) -> Span | None:
        """Record a span whose interval is already known.

        Used both retrospectively (queue waits measured at dequeue) and
        prospectively (a deterministic cost about to be paid via a
        timeout, e.g. a disk read or a CPU charge).
        """
        if not self.enabled:
            return None
        return self._make(name, category, start, end, parent, node, query_id, attrs)

    def _make(
        self,
        name: str,
        category: str,
        start: float,
        end: float | None,
        parent: Span | None,
        node: str | None,
        query_id: int | None,
        attrs: dict[str, Any] | None,
    ) -> Span | None:
        if len(self.spans) >= self.max_spans:
            self.truncated = True
            return None
        if parent is not None:
            if query_id is None:
                query_id = parent.query_id
            if node is None:
                node = parent.node
        span = Span(
            next(self._ids), name, category, start, end, parent, node, query_id, attrs
        )
        if parent is not None:
            parent.children.append(span)
        self.spans.append(span)
        return span

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.spans)

    def roots(self) -> list[Span]:
        """Spans with no parent (one per traced query, plus background work)."""
        return [span for span in self.spans if span.parent is None]

    def query_roots(self, query_id: int | None = None) -> list[Span]:
        """Root spans of traced queries, optionally for one query id."""
        return [
            span
            for span in self.spans
            if span.parent is None
            and span.query_id is not None
            and (query_id is None or span.query_id == query_id)
        ]

    def structure(self) -> list[tuple]:
        """The whole trace as structural keys (determinism comparisons)."""
        return [span.key() for span in self.spans]

    def clear(self) -> None:
        """Drop all recorded spans (id counter keeps advancing)."""
        self.spans.clear()
        self.truncated = False

"""Observability: query tracing, latency attribution, time-series metrics.

This package is the instrumentation layer the rest of the repository
reports into (see ``docs/observability.md``):

- :mod:`repro.obs.tracer` — a dependency-free span tracer producing
  per-query span trees over the simulated clock;
- :mod:`repro.obs.critical_path` — critical-path analysis attributing
  each query's end-to-end latency to queueing / network / disk / compute;
- :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON export;
- :mod:`repro.obs.registry` — a time-series metrics registry sampling
  gauges on a fixed simulated-time grid;
- :mod:`repro.obs.histogram` — mergeable log-bucketed latency
  histograms (an exact monoid: merge across nodes or runs loses
  nothing);
- :mod:`repro.obs.recorder` — the query flight recorder: trace-context
  propagation, per-class/per-node SLO histograms, and outcome events;
- :mod:`repro.obs.explain` — leg-by-leg waterfall rendering for a
  single query ("why was this one slow?").

Everything here *observes* the simulation and never schedules events,
so enabling tracing, sampling, or the flight recorder cannot change
simulated results.
"""

from repro.obs.critical_path import (
    ATTRIBUTION_CATEGORIES,
    attribute_span,
    attribution_fractions,
)
from repro.obs.explain import explain_result, format_waterfall
from repro.obs.export import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.obs.histogram import LatencyHistogram, bucket_bounds, bucket_index
from repro.obs.recorder import FlightRecorder, OutcomeEvent, QueryContext
from repro.obs.registry import MetricsRegistry, TimeSeries
from repro.obs.tracer import Span, Tracer

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "FlightRecorder",
    "LatencyHistogram",
    "MetricsRegistry",
    "OutcomeEvent",
    "QueryContext",
    "Span",
    "TimeSeries",
    "Tracer",
    "attribute_span",
    "attribution_fractions",
    "bucket_bounds",
    "bucket_index",
    "chrome_trace_events",
    "explain_result",
    "format_waterfall",
    "to_chrome_trace",
    "write_chrome_trace",
]

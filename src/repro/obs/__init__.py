"""Observability: query tracing, latency attribution, time-series metrics.

This package is the instrumentation layer the rest of the repository
reports into (see ``docs/observability.md``):

- :mod:`repro.obs.tracer` — a dependency-free span tracer producing
  per-query span trees over the simulated clock;
- :mod:`repro.obs.critical_path` — critical-path analysis attributing
  each query's end-to-end latency to queueing / network / disk / compute;
- :mod:`repro.obs.export` — Chrome/Perfetto ``trace_event`` JSON export;
- :mod:`repro.obs.registry` — a time-series metrics registry sampling
  gauges on a fixed simulated-time grid.

Everything here *observes* the simulation and never schedules events,
so enabling tracing or sampling cannot change simulated results.
"""

from repro.obs.critical_path import (
    ATTRIBUTION_CATEGORIES,
    attribute_span,
    attribution_fractions,
)
from repro.obs.export import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.obs.registry import MetricsRegistry, TimeSeries
from repro.obs.tracer import Span, Tracer

__all__ = [
    "ATTRIBUTION_CATEGORIES",
    "MetricsRegistry",
    "Span",
    "TimeSeries",
    "Tracer",
    "attribute_span",
    "attribution_fractions",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
]

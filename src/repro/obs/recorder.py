"""The query flight recorder: per-query context, outcomes, and SLOs.

Two pieces make a query's story reconstructible after the fact:

* :class:`QueryContext` — an immutable trace context (query id, client
  attempt, leg, redirect depth) threaded through every hop a query
  takes: coordinator dispatch, fetch/scan RPCs, retry and failover,
  NOT_OWNER re-routes, and shed/degraded paths.  Every recorded event is
  keyed to exactly one query and one attempt.
* :class:`FlightRecorder` — the passive sink those events land in, plus
  mergeable per-class / per-node / cluster-wide latency histograms
  (:class:`~repro.obs.histogram.LatencyHistogram`) and SLO accounting.

Design constraints (shared with :class:`~repro.obs.tracer.Tracer`):

* **Near-zero overhead when disabled** — :meth:`FlightRecorder.context`
  returns ``None`` and every ``record_*`` call no-ops on a ``None``
  context; payloads never even carry a context when recording is off.
* **Passive** — the recorder never creates simulation events and never
  consumes randomness, so enabling it cannot change simulated results.
* **Exactly one terminal outcome per attempt** — a query attempt lands
  in exactly one of ``ok`` / ``degraded`` / ``failed``, deduplicated on
  ``(query_id, attempt)``.  Mid-flight incidents (sheds, redirects,
  timeouts, breaker opens) are *events*, not outcomes, so a shed fetch
  leg that is later force-served cannot double-count.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.obs.histogram import LatencyHistogram

#: The terminal states one query attempt can land in.
OUTCOMES = ("ok", "degraded", "failed")

#: Histogram key for the cluster-wide distribution.
CLUSTER_KEY = "cluster"


@dataclass(frozen=True)
class QueryContext:
    """Trace context for one query, carried in RPC payloads.

    Frozen so a context can be shared by reference across concurrent
    legs; derive per-leg variants with :meth:`with_`.
    """

    query_id: int
    #: Client-side attempt number (0-based; bumped by evaluate retries).
    attempt: int = 0
    #: The leg (target node) this context travelled on, "" at the root.
    leg: str = ""
    #: NOT_OWNER re-route depth of this leg (0 = first routing).
    redirect_depth: int = 0

    def with_(self, **kwargs: Any) -> "QueryContext":
        """A copy with some fields replaced (leg/attempt/depth)."""
        return replace(self, **kwargs)


@dataclass(frozen=True)
class OutcomeEvent:
    """One recorded incident on a query's path, keyed to its context."""

    name: str
    at: float
    node: str | None
    query_id: int
    attempt: int
    leg: str
    redirect_depth: int
    detail: tuple | None = None

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "at": self.at,
            "node": self.node,
            "query_id": self.query_id,
            "attempt": self.attempt,
            "leg": self.leg,
            "redirect_depth": self.redirect_depth,
        }
        if self.detail:
            out.update(dict(self.detail))
        return out


class FlightRecorder:
    """Passive per-query observability sink over one simulator's clock."""

    def __init__(
        self,
        sim,
        enabled: bool = False,
        slo_targets: tuple = (),
        max_events: int = 1_000_000,
    ):
        self.sim = sim
        self.enabled = enabled
        #: ``(query_class, percentile, target_seconds)`` triples.  The
        #: per-query ``slo_violations`` counter increments whenever a
        #: query of a targeted class exceeds ``target_seconds``; the
        #: percentile is evaluated against the class histogram at report
        #: time.  Class ``"*"`` targets every query.
        self.slo_targets: tuple = tuple(slo_targets)
        self.max_events = max_events
        self.truncated = False
        self.histograms: dict[str, LatencyHistogram] = {}
        self.events: list[OutcomeEvent] = []
        self.outcome_counts: dict[str, int] = {}
        self.slo_violations = 0
        self.queries = 0
        self._terminal_seen: set[tuple[int, int]] = set()

    # -- context -----------------------------------------------------------

    def context(self, query_id: int) -> QueryContext | None:
        """A fresh root context, or ``None`` when recording is off.

        Callers propagate the ``None`` — downstream ``record_*`` calls
        no-op on it, so the disabled path allocates nothing.
        """
        if not self.enabled:
            return None
        return QueryContext(query_id=query_id)

    # -- events ------------------------------------------------------------

    def record_event(
        self,
        name: str,
        ctx: QueryContext | None,
        node: str | None = None,
        detail: dict[str, Any] | None = None,
    ) -> None:
        """Record a mid-flight incident (shed, redirect, timeout, ...)."""
        if not self.enabled or ctx is None:
            return
        if len(self.events) >= self.max_events:
            self.truncated = True
            return
        self.events.append(
            OutcomeEvent(
                name=name,
                at=self.sim.now,
                node=node,
                query_id=ctx.query_id,
                attempt=ctx.attempt,
                leg=ctx.leg,
                redirect_depth=ctx.redirect_depth,
                detail=None if detail is None else tuple(sorted(detail.items())),
            )
        )

    def events_for(self, query_id: int) -> list[OutcomeEvent]:
        return [event for event in self.events if event.query_id == query_id]

    # -- terminal outcomes -------------------------------------------------

    def record_query(
        self,
        kind: str,
        coordinator: str,
        latency: float,
        completeness: float,
        ctx: QueryContext | None,
        failed: bool = False,
    ) -> None:
        """Record one finished query attempt: histograms + outcome + SLO.

        Deduplicated on ``(query_id, attempt)``: the first terminal
        record for an attempt wins, so exactly one outcome counter
        increments per attempt no matter how many degraded/shed legs the
        attempt saw along the way.
        """
        if not self.enabled or ctx is None:
            return
        key = (ctx.query_id, ctx.attempt)
        if key in self._terminal_seen:
            return
        self._terminal_seen.add(key)
        self.queries += 1
        for hkey in (CLUSTER_KEY, f"class.{kind}", f"node.{coordinator}"):
            self._histogram(hkey).observe(latency)
        if failed:
            outcome = "failed"
        elif completeness < 1.0:
            outcome = "degraded"
        else:
            outcome = "ok"
        self.outcome_counts[outcome] = self.outcome_counts.get(outcome, 0) + 1
        for target_class, _percentile, target_seconds in self.slo_targets:
            if target_class in ("*", kind) and latency > target_seconds:
                self.slo_violations += 1
                self.record_event(
                    "slo_violation",
                    ctx,
                    node=coordinator,
                    detail={"class": kind, "latency_s": latency,
                            "target_s": target_seconds},
                )
                break

    # -- histograms --------------------------------------------------------

    def _histogram(self, key: str) -> LatencyHistogram:
        histogram = self.histograms.get(key)
        if histogram is None:
            histogram = self.histograms[key] = LatencyHistogram()
        return histogram

    def class_histograms(self) -> dict[str, LatencyHistogram]:
        return {
            key.split(".", 1)[1]: histogram
            for key, histogram in self.histograms.items()
            if key.startswith("class.")
        }

    def node_histograms(self) -> dict[str, LatencyHistogram]:
        return {
            key.split(".", 1)[1]: histogram
            for key, histogram in self.histograms.items()
            if key.startswith("node.")
        }

    # -- reporting ---------------------------------------------------------

    def slo_report(self) -> list[dict[str, Any]]:
        """Evaluate every SLO target against its class histogram."""
        out = []
        for target_class, q, target_seconds in self.slo_targets:
            if target_class == "*":
                histogram = self.histograms.get(CLUSTER_KEY)
            else:
                histogram = self.histograms.get(f"class.{target_class}")
            entry: dict[str, Any] = {
                "class": target_class,
                "percentile": q,
                "target_s": target_seconds,
            }
            if histogram is None or histogram.count == 0:
                entry["status"] = "no-data"
            else:
                lo, hi = histogram.percentile_bounds(q)
                entry["estimate_s"] = histogram.percentile_estimate(q)
                entry["bound_lo_s"] = lo
                entry["bound_hi_s"] = hi
                # Bucket-bound verdict: definitely met when even the
                # upper bound fits, definitely missed when even the
                # lower bound exceeds the target, else indeterminate at
                # this bucket resolution.
                if hi <= target_seconds:
                    entry["status"] = "met"
                elif lo > target_seconds:
                    entry["status"] = "missed"
                else:
                    entry["status"] = "borderline"
            out.append(entry)
        return out

    def report(self) -> dict[str, Any]:
        """JSON-ready summary: histograms, outcomes, SLO evaluation."""
        return {
            "queries": self.queries,
            "outcomes": {name: self.outcome_counts.get(name, 0) for name in OUTCOMES},
            "slo_violations": self.slo_violations,
            "slo": self.slo_report(),
            "events": len(self.events),
            "truncated": self.truncated,
            "histograms": {
                key: histogram.to_dict()
                for key, histogram in sorted(self.histograms.items())
            },
        }

"""Mergeable log-bucketed latency histograms.

A :class:`LatencyHistogram` is a **summary monoid** (the histogram
counterpart of :class:`~repro.data.statistics.AttributeSummary`): bucket
boundaries are *fixed* powers of two shared by every instance, so
histograms recorded on different nodes, phases, or runs merge exactly —
merge is element-wise integer addition, which is associative and
commutative with :meth:`empty` as identity.  That is what lets the
flight recorder keep one histogram per query class and per node and
still produce the cluster-wide distribution as their exact merge.

Buckets span ``[2**MIN_EXP, 2**MAX_EXP)`` seconds in powers of two, with
one underflow bucket ``[0, 2**MIN_EXP)`` and one overflow bucket
``[2**MAX_EXP, inf)``.  Percentile queries return *bounds*: the true
percentile of the recorded sample provably lies within the returned
``[lo, hi]`` bucket interval (relative error is at most one octave), and
:meth:`percentile_estimate` reports the bucket midpoint as a point
estimate.
"""

from __future__ import annotations

import math
from typing import Any, Iterable

#: Smallest resolved bucket boundary: 2**-20 s (~0.95 microseconds).
MIN_EXP = -20
#: Largest resolved bucket boundary: 2**12 s (~68 minutes).
MAX_EXP = 12
#: Underflow + one bucket per octave + overflow.
NUM_BUCKETS = (MAX_EXP - MIN_EXP) + 2


def bucket_index(value: float) -> int:
    """The bucket a (non-negative) latency falls into."""
    if value < 0.0:
        raise ValueError(f"negative latency {value}")
    if value < 2.0**MIN_EXP:
        return 0
    if value >= 2.0**MAX_EXP:
        return NUM_BUCKETS - 1
    # frexp: value = m * 2**e with 0.5 <= m < 1, so value in
    # [2**(e-1), 2**e) — e is the bucket's *upper* exponent.
    _, exponent = math.frexp(value)
    return exponent - MIN_EXP


def bucket_bounds(index: int) -> tuple[float, float]:
    """``[lo, hi)`` boundaries of one bucket (overflow hi is ``inf``)."""
    if not 0 <= index < NUM_BUCKETS:
        raise ValueError(f"bucket index {index} out of range")
    if index == 0:
        return (0.0, 2.0**MIN_EXP)
    if index == NUM_BUCKETS - 1:
        return (2.0**MAX_EXP, math.inf)
    return (2.0 ** (MIN_EXP + index - 1), 2.0 ** (MIN_EXP + index))


class LatencyHistogram:
    """Fixed-boundary log2 histogram of latencies (seconds).

    Counts are plain Python ints so merging never loses precision; the
    running ``total`` is a float sum kept for mean estimates.
    """

    __slots__ = ("counts", "count", "total")

    def __init__(self) -> None:
        self.counts: list[int] = [0] * NUM_BUCKETS
        self.count: int = 0
        self.total: float = 0.0

    # -- monoid ------------------------------------------------------------

    @classmethod
    def empty(cls) -> "LatencyHistogram":
        """The merge identity."""
        return cls()

    def observe(self, value: float) -> None:
        """Record one latency."""
        self.counts[bucket_index(value)] += 1
        self.count += 1
        self.total += value

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """The exact combination of two histograms (a new instance)."""
        out = LatencyHistogram()
        out.counts = [a + b for a, b in zip(self.counts, other.counts)]
        out.count = self.count + other.count
        out.total = self.total + other.total
        return out

    @classmethod
    def merge_all(
        cls, histograms: Iterable["LatencyHistogram"]
    ) -> "LatencyHistogram":
        out = cls()
        for histogram in histograms:
            out = out.merge(histogram)
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LatencyHistogram):
            return NotImplemented
        return self.counts == other.counts and self.count == other.count

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:
        return f"LatencyHistogram(count={self.count}, mean={self.mean():.6g})"

    # -- estimates ---------------------------------------------------------

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile_bounds(self, q: float) -> tuple[float, float]:
        """Bucket bounds bracketing the true ``q``-th percentile.

        The linear-interpolated percentile of the recorded sample (see
        :func:`repro.stats.percentile`) lies between the order statistics
        at ranks ``floor`` and ``ceil`` of ``(count - 1) * q / 100``; the
        returned interval is the lower bound of the bucket holding the
        floor rank and the upper bound of the bucket holding the ceil
        rank, so it provably contains the true value.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        if self.count == 0:
            raise ValueError("percentile of an empty histogram")
        rank = (self.count - 1) * (q / 100.0)
        lo_rank = math.floor(rank)
        hi_rank = math.ceil(rank)
        lo_bucket = self._bucket_of_rank(lo_rank)
        hi_bucket = lo_bucket if hi_rank == lo_rank else self._bucket_of_rank(hi_rank)
        return (bucket_bounds(lo_bucket)[0], bucket_bounds(hi_bucket)[1])

    def _bucket_of_rank(self, rank: int) -> int:
        """The bucket containing the 0-based order statistic ``rank``."""
        seen = 0
        for index, count in enumerate(self.counts):
            seen += count
            if rank < seen:
                return index
        return NUM_BUCKETS - 1

    def percentile_estimate(self, q: float) -> float:
        """A point estimate: the midpoint of the percentile's bounds.

        For the overflow bucket (unbounded above) the lower bound is
        returned instead of an infinite midpoint.
        """
        lo, hi = self.percentile_bounds(q)
        if math.isinf(hi):
            return lo
        return (lo + hi) / 2.0

    def summary(
        self, percentiles: Iterable[float] = (50.0, 95.0, 99.0)
    ) -> dict[str, Any]:
        """Compact operator-facing digest: count, mean, point estimates.

        The shape the HTTP facade's ``/stats`` endpoint and the scale
        bench reports embed — estimates only (bucket midpoints), not the
        full sparse bucket list of :meth:`to_dict`.
        """
        out: dict[str, Any] = {"count": self.count, "mean_s": self.mean()}
        for q in percentiles:
            key = f"p{q:g}_s"
            out[key] = self.percentile_estimate(q) if self.count else None
        return out

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Sparse JSON form: only non-empty buckets are listed."""
        return {
            "min_exp": MIN_EXP,
            "max_exp": MAX_EXP,
            "count": self.count,
            "total_s": self.total,
            "buckets": {
                str(index): count
                for index, count in enumerate(self.counts)
                if count
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "LatencyHistogram":
        if data.get("min_exp") != MIN_EXP or data.get("max_exp") != MAX_EXP:
            raise ValueError(
                "histogram bucket layout mismatch: "
                f"got [{data.get('min_exp')}, {data.get('max_exp')}], "
                f"expected [{MIN_EXP}, {MAX_EXP}]"
            )
        out = cls()
        for index, count in data.get("buckets", {}).items():
            out.counts[int(index)] = int(count)
        out.count = int(data.get("count", sum(out.counts)))
        out.total = float(data.get("total_s", 0.0))
        return out

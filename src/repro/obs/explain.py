"""Leg-by-leg query waterfalls: "why was this query slow / partial?".

Combines the three per-query records the obs layer keeps — the span tree
(:mod:`repro.obs.tracer`), the critical-path attribution
(:mod:`repro.obs.critical_path`), and the flight-recorder event stream
(:mod:`repro.obs.recorder`) — into one human-readable explanation:

* a summary line (class, latency, completeness, outcome);
* the critical-path category split;
* cache provenance (hits / roll-ups / disk);
* every recorded incident on the query's path (timeouts, sheds,
  redirects, breaker opens), keyed to attempt and leg;
* a waterfall of the span tree with per-span gantt bars.

Everything here renders already-recorded state; nothing touches the
simulation.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.critical_path import attribute_span
from repro.obs.recorder import OutcomeEvent
from repro.obs.tracer import Span

#: Events that explain *why* an answer came back partial, in the order
#: we prefer to cite them as the cause.
_DEGRADATION_EVENTS = (
    "breaker_degraded",
    "scan_leg_failed",
    "scan_leg_shed",
    "fetch_leg_failed",
    "fetch_leg_shed",
    "cells_unresolved",
    "client_gave_up",
)


def span_rows(root: Span, max_rows: int = 200) -> list[tuple[int, Span]]:
    """(depth, span) rows of the tree, depth-first, capped at ``max_rows``."""
    rows: list[tuple[int, Span]] = []

    def visit(span: Span, depth: int) -> None:
        if len(rows) >= max_rows:
            return
        rows.append((depth, span))
        for child in span.children:
            visit(child, depth + 1)

    visit(root, 0)
    return rows


def _gantt(span: Span, root: Span, width: int) -> str:
    """A fixed-width bar showing the span's interval within the root's."""
    total = root.duration
    if total <= 0.0 or span.end is None:
        return " " * width
    lo = max(0.0, (span.start - root.start) / total)
    hi = min(1.0, (span.end - root.start) / total)
    start = min(width - 1, int(lo * width))
    length = max(1, int(round((hi - lo) * width)))
    length = min(length, width - start)
    return " " * start + "#" * length + " " * (width - start - length)


def degradation_cause(
    events: Iterable[OutcomeEvent], completeness: float
) -> str | None:
    """The most specific recorded reason the answer is partial."""
    if completeness >= 1.0:
        return None
    by_name: dict[str, OutcomeEvent] = {}
    for event in events:
        by_name.setdefault(event.name, event)
    for name in _DEGRADATION_EVENTS:
        event = by_name.get(name)
        if event is not None:
            where = f" at {event.node}" if event.node else ""
            leg = f" (leg {event.leg})" if event.leg else ""
            return f"{name}{where}{leg}"
    return "unrecorded (recorder off or event cap hit)"


def format_events(events: list[OutcomeEvent], t0: float) -> list[str]:
    lines = []
    for event in events:
        detail = event.to_dict()
        for drop in ("name", "at", "node", "query_id", "attempt",
                     "leg", "redirect_depth"):
            detail.pop(drop, None)
        extras = " ".join(f"{k}={v}" for k, v in sorted(detail.items()))
        leg = f" leg={event.leg}" if event.leg else ""
        depth = f" depth={event.redirect_depth}" if event.redirect_depth else ""
        lines.append(
            f"  +{(event.at - t0) * 1e3:9.3f} ms  {event.name:<24} "
            f"node={event.node} attempt={event.attempt}{leg}{depth}"
            + (f"  {extras}" if extras else "")
        )
    return lines


def format_waterfall(
    root: Span,
    *,
    kind: str = "other",
    completeness: float = 1.0,
    provenance: dict | None = None,
    events: list[OutcomeEvent] | None = None,
    bar_width: int = 24,
    max_rows: int = 120,
) -> str:
    """Render one query's full explanation from its root span."""
    events = events or []
    out: list[str] = []
    latency = root.duration
    if completeness >= 1.0:
        outcome = "ok"
    else:
        outcome = "degraded"
    out.append(
        f"query {root.query_id} ({kind}): {latency * 1e3:.3f} ms, "
        f"completeness {completeness:.3f}, outcome {outcome}"
    )
    attribution = attribute_span(root)
    parts = [
        f"{category} {seconds * 1e3:.3f} ms"
        f" ({seconds / latency:.0%})" if latency > 0 else f"{category} 0 ms"
        for category, seconds in sorted(
            attribution.items(), key=lambda kv: -kv[1]
        )
        if seconds > 0
    ]
    if parts:
        out.append("critical path:  " + "  ·  ".join(parts))
    if provenance:
        out.append(
            "provenance:     "
            + "  ".join(f"{k}={v}" for k, v in sorted(provenance.items()))
        )
    cause = degradation_cause(events, completeness)
    if cause is not None:
        out.append(f"degraded by:    {cause}")
    if events:
        out.append(f"flight events ({len(events)}):")
        out.extend(format_events(events, root.start))
    out.append("waterfall (offsets from query start):")
    rows = span_rows(root, max_rows=max_rows)
    for depth, span in rows:
        offset = (span.start - root.start) * 1e3
        duration = "   open  " if span.end is None else f"{span.duration * 1e3:8.3f}"
        indent = "| " * depth
        out.append(
            f"  +{offset:9.3f} ms  [{_gantt(span, root, bar_width)}] "
            f"{duration} ms  {indent}{span.name}"
            f"  ({span.category}, {span.node})"
        )
    total_spans = sum(1 for _ in root.walk())
    if total_spans > len(rows):
        out.append(f"  ... {total_spans - len(rows)} more spans (row cap)")
    return "\n".join(out)


def explain_result(system, result) -> str:
    """Explain one already-executed query of a traced system.

    ``result`` is the :class:`~repro.query.model.QueryResult` the system
    returned for the query.  Requires the run to have had
    ``observability.trace`` on (for the span tree); the flight recorder
    enriches the output when it was on too.
    """
    query_id = result.query.query_id
    roots = system.tracer.query_roots(query_id)
    if not roots:
        raise ValueError(
            f"no traced root span for query {query_id}; "
            "was observability.trace enabled?"
        )
    return format_waterfall(
        roots[-1],
        kind=result.query.kind,
        completeness=result.completeness,
        provenance=result.provenance,
        events=system.recorder.events_for(query_id),
    )

"""Roll-up recomputation: build missing cells from cached finer cells.

The collective cache answers a miss without disk if the missing cell can
be computed "from the existing cached values" (paper V-B).  Summary
statistics are a mergeable monoid, so a parent cell equals the merge of
any *complete* single-axis set of its children.  Completeness is
presence: the graph stores empty cells explicitly, so a parent is
recomputable iff every child key along one axis is resident.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.cell import Cell
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.data.block import BlockId
from repro.data.statistics import SummaryVector


@dataclass(frozen=True)
class RollupResult:
    """A successfully rolled-up cell and its cost driver."""

    summary: SummaryVector
    merges: int
    axis: str
    backing_blocks: frozenset[BlockId]


def merge_summaries(
    summaries: list[SummaryVector], attributes: list[str]
) -> SummaryVector:
    """Monoid-merge a complete set of child summaries into their parent.

    Empty children contribute nothing; an all-empty (or empty) set yields
    the explicit empty vector over ``attributes``.  This is the single
    merge site of the roll-up path — the conformance harness's mutation
    check (docs/testing.md) corrupts exactly this function to prove the
    oracle campaign catches a broken roll-up.
    """
    nonempty = [s for s in summaries if not s.is_empty]
    if not nonempty:
        return SummaryVector.empty(attributes)
    return SummaryVector.merge_all(nonempty)


def _try_axis(
    graph: StashGraph, children: list[CellKey]
) -> tuple[list[Cell], bool]:
    """Fetch all child cells; complete only if every key is resident."""
    cells = []
    for key in children:
        cell = graph.get(key)
        if cell is None:
            return [], False
        cells.append(cell)
    return cells, True


def try_rollup(
    graph: StashGraph, key: CellKey, attributes: list[str]
) -> RollupResult | None:
    """Attempt to recompute ``key`` from cached children.

    Tries the spatial axis (32 children) then the temporal axis; returns
    None when neither is completely resident or the resolutions fall
    outside the graph's space.
    """
    space = graph.space
    for axis in ("spatial", "temporal"):
        finer = (
            key.resolution.finer_spatial()
            if axis == "spatial"
            else key.resolution.finer_temporal()
        )
        if finer is None or not space.contains(finer):
            continue
        children = key.children(axis)
        if not children:
            continue
        cells, complete = _try_axis(graph, children)
        if not complete:
            continue
        summary = merge_summaries([cell.summary for cell in cells], attributes)
        blocks: set[BlockId] = set()
        for cell in cells:
            blocks.update(graph.plm.blocks_of(graph.level_of(cell.key), cell.key))
        return RollupResult(
            summary=summary,
            merges=len(cells),
            axis=axis,
            backing_blocks=frozenset(blocks),
        )
    return None

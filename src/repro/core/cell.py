"""The STASH Cell: vertex of the STASH graph (paper section IV-A).

A Cell is "the minimum unit of data storage in STASH": per-attribute
aggregated summary statistics for one spatiotemporal bin, labeled by its
:class:`~repro.core.keys.CellKey`, plus freshness bookkeeping used by the
replacement policy.  Edge information is not stored — it is computed from
the key (see :mod:`repro.core.keys`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.keys import CellKey
from repro.data.statistics import SummaryVector
from repro.errors import CacheError


@dataclass
class Cell:
    """One cached aggregation bin.

    ``freshness`` and ``last_touched`` are mutable bookkeeping owned by
    the freshness tracker; ``summary`` is immutable content.
    """

    key: CellKey
    summary: SummaryVector
    #: Current freshness score (decayed access weight, paper V-C-1).
    freshness: float = 0.0
    #: Simulated time of the last freshness update.
    last_touched: float = 0.0
    #: Number of direct accesses (for diagnostics; freshness is the policy).
    access_count: int = field(default=0)

    def __post_init__(self) -> None:
        if self.summary.is_empty:
            # Empty cells are representable (a region with no observations)
            # but must still carry the attribute schema.
            if not self.summary.attributes:
                raise CacheError(f"cell {self.key} has no attributes")

    @property
    def count(self) -> int:
        """Number of raw observations aggregated into this cell."""
        return self.summary.count

    def touched(self, amount: float, now: float, decay_rate: float) -> None:
        """Apply a freshness increment with exponential decay since last touch.

        ``decay_rate`` is ln(2) / half_life; see
        :class:`~repro.core.freshness.FreshnessTracker`.
        """
        import math

        elapsed = max(0.0, now - self.last_touched)
        self.freshness = self.freshness * math.exp(-decay_rate * elapsed) + amount
        self.last_touched = now

    def decayed_freshness(self, now: float, decay_rate: float) -> float:
        """Freshness as of ``now`` without mutating the cell."""
        import math

        elapsed = max(0.0, now - self.last_touched)
        return self.freshness * math.exp(-decay_rate * elapsed)

"""The STASH Cell: vertex of the STASH graph (paper section IV-A).

A Cell is "the minimum unit of data storage in STASH": per-attribute
aggregated summary statistics for one spatiotemporal bin, labeled by its
:class:`~repro.core.keys.CellKey`, plus freshness bookkeeping used by the
replacement policy.  Edge information is not stored — it is computed from
the key (see :mod:`repro.core.keys`).

Freshness bookkeeping is *columnar*: while a cell is resident in a
:class:`~repro.core.graph.StashGraph`, its ``(freshness, last_touched,
access_count)`` triple lives in per-level numpy arrays owned by the graph
(see :class:`~repro.core.graph.FreshnessColumns`), so the hot paths —
batched touches and whole-graph eviction scoring — are single vectorized
operations instead of per-cell Python attribute updates.  The ``Cell``
attributes below read/write through to the columns when attached and fall
back to instance storage for detached cells, so existing callers see the
same API either way.

All exponential decay uses ``np.exp`` (scalar and array forms are
bit-identical) so the scalar scoring path and the vectorized eviction
kernel produce byte-equal scores.
"""

from __future__ import annotations

import numpy as np

from repro.core.keys import CellKey
from repro.data.statistics import SummaryVector
from repro.errors import CacheError


class Cell:
    """One cached aggregation bin.

    ``freshness``, ``last_touched`` and ``access_count`` are mutable
    bookkeeping owned by the freshness tracker; ``summary`` is immutable
    content.
    """

    __slots__ = (
        "key",
        "summary",
        "_freshness",
        "_last_touched",
        "_access_count",
        "_columns",
    )

    def __init__(
        self,
        key: CellKey,
        summary: SummaryVector,
        freshness: float = 0.0,
        last_touched: float = 0.0,
        access_count: int = 0,
    ):
        self.key = key
        self.summary = summary
        self._freshness = freshness
        self._last_touched = last_touched
        self._access_count = access_count
        #: The graph-level column store this cell is resident in, or None.
        self._columns = None
        if summary.is_empty:
            # Empty cells are representable (a region with no observations)
            # but must still carry the attribute schema.
            if not summary.attributes:
                raise CacheError(f"cell {self.key} has no attributes")

    # -- columnar attachment (managed by StashGraph) -----------------------

    def _attach(self, columns) -> None:
        """Hand freshness bookkeeping to a graph's column store."""
        self._columns = columns

    def _detach(self, freshness: float, last_touched: float, access_count: int) -> None:
        """Take the final column values back into instance storage."""
        self._columns = None
        self._freshness = freshness
        self._last_touched = last_touched
        self._access_count = access_count

    # -- freshness bookkeeping (column-backed when resident) ---------------

    @property
    def freshness(self) -> float:
        """Current freshness score (decayed access weight, paper V-C-1)."""
        cols = self._columns
        if cols is not None:
            return float(cols.freshness[cols.slot_of[self.key]])
        return self._freshness

    @freshness.setter
    def freshness(self, value: float) -> None:
        cols = self._columns
        if cols is not None:
            cols.freshness[cols.slot_of[self.key]] = value
        else:
            self._freshness = value

    @property
    def last_touched(self) -> float:
        """Simulated time of the last freshness update."""
        cols = self._columns
        if cols is not None:
            return float(cols.last_touch[cols.slot_of[self.key]])
        return self._last_touched

    @last_touched.setter
    def last_touched(self, value: float) -> None:
        cols = self._columns
        if cols is not None:
            cols.last_touch[cols.slot_of[self.key]] = value
        else:
            self._last_touched = value

    @property
    def access_count(self) -> int:
        """Number of direct accesses (diagnostics; freshness is the policy)."""
        cols = self._columns
        if cols is not None:
            return int(cols.access_count[cols.slot_of[self.key]])
        return self._access_count

    @access_count.setter
    def access_count(self, value: int) -> None:
        cols = self._columns
        if cols is not None:
            cols.access_count[cols.slot_of[self.key]] = value
        else:
            self._access_count = value

    # -- content -----------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of raw observations aggregated into this cell."""
        return self.summary.count

    def touched(self, amount: float, now: float, decay_rate: float) -> None:
        """Apply a freshness increment with exponential decay since last touch.

        ``decay_rate`` is ln(2) / half_life; see
        :class:`~repro.core.freshness.FreshnessTracker`.
        """
        elapsed = max(0.0, now - self.last_touched)
        self.freshness = self.freshness * float(np.exp(-decay_rate * elapsed)) + amount
        self.last_touched = now

    def decayed_freshness(self, now: float, decay_rate: float) -> float:
        """Freshness as of ``now`` without mutating the cell."""
        elapsed = max(0.0, now - self.last_touched)
        return self.freshness * float(np.exp(-decay_rate * elapsed))

    def __repr__(self) -> str:
        return (
            f"Cell(key={self.key!r}, summary={self.summary!r}, "
            f"freshness={self.freshness!r}, last_touched={self.last_touched!r}, "
            f"access_count={self.access_count!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Cell):
            return NotImplemented
        return (
            self.key == other.key
            and self.summary == other.summary
            and self.freshness == other.freshness
            and self.last_touched == other.last_touched
            and self.access_count == other.access_count
        )

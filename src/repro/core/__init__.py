"""STASH core: the distributed in-memory hierarchical aggregation cache.

This is the paper's primary contribution (sections IV-VII): the Cell data
model, the level-organized graph with computed hierarchical/lateral edges,
the precision-level map, freshness-based replacement, the query planner
that reuses cached and recomputable cells, and the distributed cluster
front-end.
"""

from repro.core.keys import CellKey
from repro.core.cell import Cell
from repro.core.graph import StashGraph
from repro.core.plm import PrecisionLevelMap
from repro.core.freshness import FreshnessTracker
from repro.core.planner import QueryPlan, plan_query

__all__ = [
    "CellKey",
    "Cell",
    "StashGraph",
    "PrecisionLevelMap",
    "FreshnessTracker",
    "QueryPlan",
    "plan_query",
]

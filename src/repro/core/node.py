"""The STASH node: cache-aware query evaluation over the storage node.

Each node plays three roles (paper sections IV-VII):

* **coordinator** for queries routed to it: plans the footprint over the
  DHT, gathers cached/rolled-up cells from owners, scans disk for the
  rest, and asynchronously populates the cache;
* **cell owner** for the portion of the STASH graph the DHT assigns it:
  serves ``fetch_cells``, applies freshness touches and dispersion,
  accepts ``populate`` inserts and enforces eviction;
* **replication participant**: detects its own hotspots, hands off hot
  cliques to antipode helpers, keeps a guest graph of cliques replicated
  *to* it, and serves rerouted ``evaluate_guest`` requests from it.
"""

from __future__ import annotations

from typing import Any, Generator

import numpy as np

from repro.config import StashConfig
from repro.core.cell import Cell
from repro.core.eviction import EvictionPolicy
from repro.core.freshness import FreshnessTracker, query_ring
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.core.planner import plan_query
from repro.data.block import BlockId
from repro.data.statistics import SummaryVector
from repro.dht.partitioner import Partitioner
from repro.faults.membership import RPC_SHED, rpc_ok
from repro.geo.resolution import ResolutionSpace
from repro.obs.recorder import QueryContext
from repro.obs.tracer import Span
from repro.query.model import AggregationQuery
from repro.replication.antipode import antipode_candidates
from repro.replication.clique import top_cliques
from repro.replication.routing import RoutingTable
from repro.sim.engine import Event
from repro.sim.network import Message
from repro.storage.node import StorageNode


class GuestCliqueRegistry:
    """Bookkeeping for cliques replicated *onto* this node.

    Maintains an inverted index member key -> {clique roots} so refreshing
    the cliques a query footprint touches is O(|footprint|) instead of
    O(cliques x members), and so removal can tell which members are still
    referenced by other (overlapping) cliques.
    """

    def __init__(self) -> None:
        #: root key string -> (member keys, last_used sim time)
        self.entries: dict[str, dict[str, Any]] = {}
        #: member key -> root key strings of every clique containing it
        self._member_roots: dict[CellKey, set[str]] = {}

    def _unindex(self, root: str) -> None:
        for member in self.entries[root]["members"]:
            roots = self._member_roots.get(member)
            if roots is not None:
                roots.discard(root)
                if not roots:
                    del self._member_roots[member]

    def add(self, root: CellKey, members: list[CellKey], now: float) -> list[CellKey]:
        """Register a clique; returns members orphaned by an overwrite.

        Re-replicating a root replaces its member list; old members not in
        the new list (and in no other clique) are returned so the caller
        can drop them from the guest graph instead of leaking them.
        """
        root_key = str(root)
        if root_key in self.entries:
            self._unindex(root_key)
            old_members = self.entries[root_key]["members"]
        else:
            old_members = []
        self.entries[root_key] = {"members": list(members), "last_used": now}
        for member in members:
            self._member_roots.setdefault(member, set()).add(root_key)
        new_members = set(members)
        return [
            member
            for member in old_members
            if member not in new_members and member not in self._member_roots
        ]

    def touch_covering(self, keys: set[CellKey], now: float) -> None:
        """Refresh last_used for every clique intersecting ``keys``."""
        touched: set[str] = set()
        for key in keys:
            touched.update(self._member_roots.get(key, ()))
        for root in touched:
            entry = self.entries.get(root)
            if entry is not None:
                entry["last_used"] = now

    def expired(self, now: float, ttl: float) -> list[str]:
        return [
            root
            for root, entry in self.entries.items()
            if now - entry["last_used"] > ttl
        ]

    def remove(self, root: str) -> list[CellKey]:
        """Drop a clique; returns the members no other clique references.

        Members shared with a still-registered overlapping clique are kept
        out of the result so callers do not evict cells that clique still
        serves.
        """
        self._unindex(root)
        members = self.entries.pop(root)["members"]
        return [m for m in members if m not in self._member_roots]

    def clear(self) -> None:
        self.entries.clear()
        self._member_roots.clear()


class StashNode(StorageNode):
    """A storage node extended with the STASH in-memory layer."""

    def __init__(
        self,
        sim,
        network,
        catalog,
        node_id: str,
        config: StashConfig,
        partitioner: Partitioner,
        space: ResolutionSpace,
        attribute_names: list[str],
        node_index: int = 0,
        membership=None,
    ):
        super().__init__(sim, network, catalog, node_id, config, membership=membership)
        self.partitioner = partitioner
        self.space = space
        self.attribute_names = list(attribute_names)
        self.graph = StashGraph(space, name=f"local:{node_id}")
        self.guest = StashGraph(space, name=f"guest:{node_id}")
        self.guest_cliques = GuestCliqueRegistry()
        self.tracker = FreshnessTracker(config.freshness)
        self.eviction = EvictionPolicy(config.eviction)
        self.routing = RoutingTable(
            ttl=config.replication.routing_ttl,
            reroute_probability=config.replication.reroute_probability,
        )
        self.rng = np.random.default_rng(config.cluster.seed * 10_007 + node_index)
        self._handoff_in_progress = False
        self._last_handoff = -float("inf")
        self.handoffs_completed = 0
        #: Set iff epidemic membership is on (then ``self.membership`` is
        #: this node's own :class:`GossipMembership` view).
        self._gossip = config.gossip if config.gossip.enabled else None

        self.register_handler("evaluate", self._handle_evaluate)
        self.register_handler("evaluate_cells", self._handle_evaluate_cells)
        self.register_handler("evaluate_guest", self._handle_evaluate_guest)
        self.register_handler("fetch_cells", self._handle_fetch_cells)
        self.register_handler("populate", self._handle_populate)
        self.register_handler("distress", self._handle_distress)
        self.register_handler("replicate", self._handle_replicate)
        self.register_handler("repair", self._handle_repair)
        self.register_handler("handoff", self._handle_handoff)

    # ------------------------------------------------------------------
    # fault-aware routing and lifecycle
    # ------------------------------------------------------------------

    def _owner_of(self, geohash: str) -> str:
        """Cell/block owner under the current (possibly repaired) ring."""
        if self.membership is not None:
            return self.membership.node_for(geohash)
        return self.partitioner.node_for(geohash)

    def _group_by_owner(
        self, keys: list[CellKey], owner_memo: dict[str, str]
    ) -> dict[str, list[CellKey]]:
        """Group cell keys by owning node, resolving each geohash once.

        Ownership depends only on the geohash, and a footprint is a
        (spatial cover x time keys) product, so resolving per *geohash*
        instead of per cell cuts DHT lookups by the temporal width.  The
        memo is shared across the footprint and ring of one evaluation
        (ownership cannot change mid-call: there is no yield in between).
        """
        grouped: dict[str, list[CellKey]] = {}
        for key in keys:
            geohash = key.geohash
            owner = owner_memo.get(geohash)
            if owner is None:
                owner = owner_memo[geohash] = self._owner_of(geohash)
            grouped.setdefault(owner, []).append(key)
        return grouped

    def _peer_live(self, node_id: str) -> bool:
        return self.membership is None or self.membership.is_live(node_id)

    def crash(self) -> None:
        """Lose queues and every in-memory cache (fault injection)."""
        super().crash()
        self.graph.clear()
        self.guest.clear()
        self.guest_cliques.clear()
        self.routing.clear()
        self._handoff_in_progress = False

    # ------------------------------------------------------------------
    # hotspot detection (event-driven, paper VII-B-1)
    # ------------------------------------------------------------------

    def on_message_arrival(self, message: Message) -> None:
        if not self.config.enable_replication:
            return
        if self._handoff_in_progress:
            return
        repl = self.config.replication
        if self.pending_requests <= repl.hotspot_queue_threshold:
            return
        if self.sim.now - self._last_handoff < repl.cooldown:
            return
        self._handoff_in_progress = True
        self.counters.increment("hotspots_detected")
        self.sim.process(self._clique_handoff())

    def _clique_handoff(self) -> Generator[Event, Any, None]:
        """The decentralized handoff protocol (paper VII-B)."""
        repl = self.config.replication
        try:
            now = self.sim.now
            cliques = top_cliques(
                self.graph,
                self.tracker,
                now,
                depth=repl.clique_depth,
                max_cells=repl.max_replicated_cells,
                top_k=repl.top_k_cliques,
            )
            for clique in cliques:
                if not clique.members:
                    continue
                candidates = antipode_candidates(
                    clique.root.geohash,
                    self.partitioner,
                    exclude=self.node_id,
                    rng=self.rng,
                    max_probes=repl.max_candidate_probes,
                )
                helper = None
                for candidate in candidates:
                    if not self._peer_live(candidate):
                        continue
                    ack = yield self.request_resilient(
                        candidate,
                        "distress",
                        {"ncells": clique.size},
                        size=64,
                    )
                    # ack is True / False / RPC_FAILED / RPC_SHED; the
                    # sentinels raise on truth-testing, so compare by
                    # identity (only an explicit acceptance counts).
                    if ack is True:
                        helper = candidate
                        break
                if helper is None:
                    self.counters.increment("handoffs_no_helper")
                    continue
                payload_cells = []
                for key in clique.members:
                    cell = self.graph.get(key)
                    if cell is None:  # evicted mid-handoff
                        continue
                    blocks = self.graph.plm.blocks_of(self.graph.level_of(key), key)
                    payload_cells.append((key, cell.summary, blocks))
                if not payload_cells:
                    continue
                ok = yield self.request_resilient(
                    helper,
                    "replicate",
                    {"root": clique.root, "cells": payload_cells},
                    size=len(payload_cells) * self.cost.cell_wire_size,
                )
                if ok is True:
                    self.routing.add(
                        clique.root,
                        helper,
                        frozenset(key for key, _, _ in payload_cells),
                        self.sim.now,
                    )
                    self.handoffs_completed += 1
                    self.counters.increment("handoffs_completed")
        finally:
            self._last_handoff = self.sim.now
            self._handoff_in_progress = False

    # ------------------------------------------------------------------
    # helper-side replication handlers
    # ------------------------------------------------------------------

    def _purge_guest(self) -> None:
        """Drop guest cliques unused beyond the TTL (paper VII-D)."""
        ttl = self.config.replication.guest_ttl
        for root in self.guest_cliques.expired(self.sim.now, ttl):
            for key in self.guest_cliques.remove(root):
                if self.guest.contains(key):
                    self.guest.remove(key)
            self.counters.increment("guest_cliques_purged")

    def _handle_distress(self, message: Message) -> Generator[Event, Any, None]:
        """Accept iff not hotspotted and the guest graph has room."""
        self._purge_guest()
        ncells = message.payload["ncells"]
        repl = self.config.replication
        accept = (
            self.pending_requests <= repl.hotspot_queue_threshold
            and len(self.guest) + ncells <= repl.guest_capacity
        )
        yield self.sim.timeout(self.cost.cell_lookup_cost)
        self.network.respond(message, bool(accept), size=16)

    def _handle_replicate(self, message: Message) -> Generator[Event, Any, None]:
        root: CellKey = message.payload["root"]
        cells: list[tuple[CellKey, SummaryVector, frozenset[BlockId]]] = (
            message.payload["cells"]
        )
        if len(self.guest) + len(cells) > self.config.replication.guest_capacity:
            self.network.respond(message, False, size=16)
            return
        inserted = []
        for key, summary, blocks in cells:
            if self.guest.upsert(Cell(key=key, summary=summary), blocks):
                inserted.append(key)
        yield self.sim.timeout(len(cells) * self.cost.cell_insert_cost)
        orphaned = self.guest_cliques.add(
            root, [key for key, _, _ in cells], self.sim.now
        )
        # A re-replicated root replaces its member list; members dropped
        # from it (and referenced by no other clique) would otherwise
        # leak in the guest graph until capacity starves all handoffs.
        for key in orphaned:
            if self.guest.contains(key):
                self.guest.remove(key)
        self.counters.increment("guest_cells_accepted", len(inserted))
        self.network.respond(message, True, size=16)

    def _handle_evaluate_guest(self, message: Message) -> Generator[Event, Any, None]:
        """Serve a rerouted query from the guest graph (paper VII-C)."""
        yield self.sim.timeout(self.cost.request_overhead)
        query: AggregationQuery = message.payload["query"]
        footprint = query.footprint()
        plan = plan_query(self.guest, footprint, self.attribute_names, attempt_rollup=False)
        yield self.sim.timeout(plan.lookups * self.cost.cell_lookup_cost)
        if plan.missing:
            # Replica incomplete (e.g. purged between routing and arrival):
            # fall back to a normal evaluation from here.
            self.counters.increment("guest_fallbacks")
            self.recorder.record_event(
                "guest_fallback", message.payload.get("ctx"), node=self.node_id
            )
            response = yield from self._evaluate_core(
                query, footprint, parent=message.span, ctx=message.payload.get("ctx")
            )
            response["provenance"]["rerouted"] = 1
            self.network.respond(
                message,
                response,
                size=len(response["cells"]) * self.cost.cell_wire_size,
            )
            return
        self.guest_cliques.touch_covering(set(footprint), self.sim.now)
        cells = {k: v for k, v in plan.cached.items() if not v.is_empty}
        # Match _evaluate_core's response contract exactly: the attribute
        # projection applies to every answer path (a rerouted query must
        # not return wider attribute sets than the same query served
        # directly), and the reply carries an explicit completeness.
        if query.attributes is not None:
            cells = {
                key: vec.project(query.attributes) for key, vec in cells.items()
            }
        self.counters.increment("guest_queries_served")
        self.network.respond(
            message,
            {
                "cells": cells,
                "provenance": {
                    "rerouted": 1,
                    "cells_from_cache": len(plan.cached),
                    "cells_from_rollup": 0,
                    "cells_from_disk": 0,
                    "disk_blocks_read": 0,
                },
                "completeness": 1.0,
            },
            size=len(cells) * self.cost.cell_wire_size,
        )

    # ------------------------------------------------------------------
    # owner-side cache handlers
    # ------------------------------------------------------------------

    def _fetch_cells_impl(
        self, payload: dict[str, Any], parent: Span | None = None
    ) -> Generator[Event, Any, dict[str, Any]]:
        keys: list[CellKey] = payload["cells"]
        ring: list[CellKey] = payload.get("ring", [])
        plan = plan_query(
            self.graph,
            keys,
            self.attribute_names,
            attempt_rollup=self.config.enable_rollup,
        )
        cpu = (
            plan.lookups * self.cost.cell_lookup_cost
            + plan.merges * self.cost.cell_merge_cost
        )
        if self.tracer.enabled and cpu > 0:
            self.tracer.record(
                "fetch:plan",
                "compute",
                self.sim.now,
                self.sim.now + cpu,
                parent=parent,
                node=self.node_id,
                attrs={"lookups": plan.lookups, "merges": plan.merges},
            )
        yield self.sim.timeout(cpu)
        now = self.sim.now
        self.tracker.touch_cells(self.graph, keys, now)
        self.tracker.disperse_to_neighborhood(self.graph, ring, now)
        # Cache successful roll-ups: they are complete cells now.
        for key, rollup in plan.rollup.items():
            self.graph.upsert(
                Cell(key=key, summary=rollup.summary), rollup.backing_blocks
            )
        if plan.rollup:
            # Rolled-up cells were absent during the touch above, so they
            # would start at zero freshness — immediate eviction bait
            # despite being created by this very access.  Credit them now
            # that they are resident.
            self.tracker.touch_cells(self.graph, list(plan.rollup), now)
        self.counters.increment("cells_served_from_cache", len(plan.cached))
        self.counters.increment("cells_served_from_rollup", len(plan.rollup))
        return {
            "found": plan.found,
            "missing": plan.missing,
            "stats": {"cached": len(plan.cached), "rollup": len(plan.rollup)},
        }

    def _handle_fetch_cells(self, message: Message) -> Generator[Event, Any, None]:
        yield self.sim.timeout(self.cost.request_overhead)
        if self._gossip is not None and not message.payload.get("force"):
            # Misroute tolerance: under diverging views a coordinator may
            # address keys we don't own in *our* view.  Instead of serving
            # a cold miss, answer NOT_OWNER with our view so the caller
            # can merge it and re-route (paper's zero-hop map, made
            # eventually consistent).
            if not self._owns_all(message.payload["cells"]):
                self.counters.increment("fetch_not_owner")
                digest = self.membership.digest()
                self.network.respond(
                    message,
                    {"not_owner": digest},
                    size=len(digest) * self._gossip.wire_size_per_entry,
                )
                return
        response = yield from self._fetch_cells_impl(
            message.payload, parent=message.span
        )
        self.network.respond(
            message,
            response,
            size=len(response["found"]) * self.cost.cell_wire_size,
        )

    def _owns_all(self, keys: list[CellKey]) -> bool:
        """Whether this node owns every key under its own current view."""
        seen: set[str] = set()
        for key in keys:
            geohash = key.geohash
            if geohash in seen:
                continue
            seen.add(geohash)
            if self.membership.node_for(geohash) != self.node_id:
                return False
        return True

    def _handle_populate(self, message: Message) -> Generator[Event, Any, None]:
        """Background cache population (paper VIII-C-2: separate thread)."""
        yield self.sim.timeout(self.cost.request_overhead)
        cells: dict[CellKey, SummaryVector] = message.payload["cells"]
        if self._gossip is not None:
            # Misdirected population (diverging views): caching cells we
            # don't own would strand them where no fetch will ever look.
            owned_memo: dict[str, bool] = {}
            kept: dict[CellKey, SummaryVector] = {}
            for key, summary in cells.items():
                owned = owned_memo.get(key.geohash)
                if owned is None:
                    owned = owned_memo[key.geohash] = (
                        self.membership.node_for(key.geohash) == self.node_id
                    )
                if owned:
                    kept[key] = summary
            if len(kept) != len(cells):
                self.counters.increment(
                    "populate_misdirected", len(cells) - len(kept)
                )
            cells = kept
        inserted = 0
        for key, summary in cells.items():
            blocks = frozenset(self.catalog.blocks_for_cell(key))
            if self.graph.upsert(Cell(key=key, summary=summary), blocks):
                inserted += 1
        cpu = inserted * self.cost.cell_insert_cost
        if self.tracer.enabled and cpu > 0:
            self.tracer.record(
                "populate:insert",
                "compute",
                self.sim.now,
                self.sim.now + cpu,
                parent=message.span,
                node=self.node_id,
                attrs={"cells": inserted},
            )
        yield self.sim.timeout(cpu)
        now = self.sim.now
        self.tracker.touch_cells(self.graph, list(cells), now)
        self.counters.increment("cells_populated", inserted)
        evicted = self.eviction.enforce(self.graph, self.tracker, now)
        if evicted:
            self.counters.increment("cells_evicted", len(evicted))

    # ------------------------------------------------------------------
    # anti-entropy repair and rejoin handoff (gossip mode)
    # ------------------------------------------------------------------

    def on_peer_confirmed_dead(self, peer: str) -> None:
        """Membership callback: a peer's death was just confirmed here.

        Survivors holding guest replicas of the dead node's range promote
        or re-disperse them so the working set stays warm instead of
        cold-starting behind the repaired ring.
        """
        if self._gossip is None or not self._gossip.repair:
            return
        if self._workers_stale:  # we are down ourselves
            return
        self.sim.process(self._repair_after_death(peer))

    def on_peer_rejoined(self, peer: str) -> None:
        """Membership callback: a dead peer is back (new incarnation)."""
        if self._gossip is None or not self._gossip.handoff:
            return
        if self._workers_stale:
            return
        self.sim.process(self._handoff_back(peer))

    def _repair_after_death(self, peer: str) -> Generator[Event, Any, None]:
        """Promote / re-disperse guest cells covering a dead node's range.

        Base ownership (``partitioner``) identifies the dead node's
        cells; our repaired view says where they live now.  Cells this
        node now owns are promoted into the local graph; the rest are
        shipped to their new owners as ``repair`` batches.  Guest copies
        stay behind (the TTL purge collects them) so a lost repair never
        loses data that was replicated.
        """
        gossip = self._gossip
        assert gossip is not None
        promote: list[tuple[CellKey, SummaryVector, frozenset[BlockId]]] = []
        ship: dict[str, list[tuple[CellKey, SummaryVector, frozenset[BlockId]]]] = {}
        count = 0
        for cell in list(self.guest.cells()):
            if count >= gossip.max_repair_cells:
                break
            key = cell.key
            if self.partitioner.node_for(key.geohash) != peer:
                continue
            new_owner = self.membership.node_for(key.geohash)
            if new_owner == peer:
                continue
            blocks = self.guest.plm.blocks_of(self.guest.level_of(key), key)
            entry = (key, cell.summary, blocks)
            if new_owner == self.node_id:
                promote.append(entry)
            else:
                ship.setdefault(new_owner, []).append(entry)
            count += 1
        if promote:
            inserted = [
                key
                for key, summary, blocks in promote
                if self.graph.upsert(Cell(key=key, summary=summary), blocks)
            ]
            yield self.sim.timeout(len(inserted) * self.cost.cell_insert_cost)
            now = self.sim.now
            self.tracker.touch_cells(self.graph, inserted, now)
            self.counters.increment("repair_cells_promoted", len(inserted))
            evicted = self.eviction.enforce(self.graph, self.tracker, now)
            if evicted:
                self.counters.increment("cells_evicted", len(evicted))
        for owner, batch in sorted(ship.items()):
            if not self._peer_live(owner):
                continue
            ack = yield self.request_resilient(
                owner,
                "repair",
                {"cells": batch},
                size=len(batch) * self.cost.cell_wire_size,
            )
            if ack is True:
                self.counters.increment("repair_cells_shipped", len(batch))

    def _handoff_back(self, peer: str) -> Generator[Event, Any, None]:
        """Stream a rejoined node's partition back to it.

        Any cell in our *local* graph whose base owner is the rejoined
        peer was adopted during its outage (repair promotion or interim
        population); ship it back — with backing-block sets so the
        peer's PLM bitmaps rebuild consistently — then drop our copy so
        ownership is single-homed again.
        """
        gossip = self._gossip
        assert gossip is not None
        batch: list[tuple[CellKey, SummaryVector, frozenset[BlockId]]] = []
        for cell in list(self.graph.cells()):
            if len(batch) >= gossip.max_repair_cells:
                break
            key = cell.key
            if self.partitioner.node_for(key.geohash) != peer:
                continue
            blocks = self.graph.plm.blocks_of(self.graph.level_of(key), key)
            batch.append((key, cell.summary, blocks))
        if not batch:
            return
        ack = yield self.request_resilient(
            peer,
            "handoff",
            {"cells": batch},
            size=len(batch) * self.cost.cell_wire_size,
        )
        if ack is True:
            for key, _, _ in batch:
                if self.graph.contains(key):
                    self.graph.remove(key)
            self.counters.increment("handoff_cells_streamed", len(batch))

    def _absorb_cells(
        self, message: Message, counter: str
    ) -> Generator[Event, Any, None]:
        """Insert shipped (key, summary, blocks) triples into the graph."""
        yield self.sim.timeout(self.cost.request_overhead)
        cells: list[tuple[CellKey, SummaryVector, frozenset[BlockId]]] = (
            message.payload["cells"]
        )
        inserted = [
            key
            for key, summary, blocks in cells
            if self.graph.upsert(Cell(key=key, summary=summary), blocks)
        ]
        yield self.sim.timeout(len(inserted) * self.cost.cell_insert_cost)
        now = self.sim.now
        self.tracker.touch_cells(self.graph, inserted, now)
        self.counters.increment(counter, len(inserted))
        evicted = self.eviction.enforce(self.graph, self.tracker, now)
        if evicted:
            self.counters.increment("cells_evicted", len(evicted))
        self.network.respond(message, True, size=16)

    def _handle_repair(self, message: Message) -> Generator[Event, Any, None]:
        yield from self._absorb_cells(message, "repair_cells_received")

    def _handle_handoff(self, message: Message) -> Generator[Event, Any, None]:
        yield from self._absorb_cells(message, "handoff_cells_received")

    # ------------------------------------------------------------------
    # coordinator role
    # ------------------------------------------------------------------

    def _handle_evaluate(self, message: Message) -> Generator[Event, Any, None]:
        query: AggregationQuery = message.payload["query"]
        ctx: QueryContext | None = message.payload.get("ctx")
        footprint = query.footprint()
        if self.config.enable_replication:
            # Routing-table check before full request processing: a
            # rerouted query costs the hotspotted node one lookup, not a
            # whole evaluation (paper VII-C).
            helper = self.routing.choose_reroute(footprint, self.sim.now, self.rng)
            # Liveness check AFTER choose_reroute: the rng draw happens
            # either way, so fault-free runs consume an identical stream.
            if helper is not None and not self._peer_live(helper):
                helper = None
            if helper is not None:
                yield self.sim.timeout(self.cost.cell_lookup_cost)
                self.counters.increment("queries_rerouted")
                self.recorder.record_event(
                    "rerouted_to_replica",
                    ctx,
                    node=self.node_id,
                    detail={"helper": helper},
                )
                self.network.send(
                    self.node_id,
                    helper,
                    "evaluate_guest",
                    {"query": query, "ctx": ctx},
                    size=512,
                    reply_to=message.reply_to,
                    parent=message.span,
                )
                return
        yield self.sim.timeout(self.cost.request_overhead)
        response = yield from self._evaluate_core(
            query, footprint, parent=message.span, ctx=ctx
        )
        self.network.respond(
            message,
            response,
            size=len(response["cells"]) * self.cost.cell_wire_size,
        )

    def _handle_evaluate_cells(self, message: Message) -> Generator[Event, Any, None]:
        """Partial evaluation: resolve an explicit cell-key list.

        Used by front-end mini STASH graphs (paper future work IX-A): a
        client that already holds part of a viewport's footprint requests
        exactly the missing cells, not the whole rectangle.
        """
        yield self.sim.timeout(self.cost.request_overhead)
        query: AggregationQuery = message.payload["query"]
        keys: list[CellKey] = message.payload["cells"]
        response = yield from self._evaluate_core(
            query, keys, parent=message.span, ctx=message.payload.get("ctx")
        )
        self.counters.increment("partial_evaluations")
        self.network.respond(
            message,
            response,
            size=len(response["cells"]) * self.cost.cell_wire_size,
        )

    def _evaluate_core(
        self,
        query: AggregationQuery,
        footprint: list[CellKey],
        parent: Span | None = None,
        ctx: QueryContext | None = None,
    ) -> Generator[Event, Any, dict[str, Any]]:
        """Footprint -> owners -> cache plan -> scans -> populate.

        Under fault injection a fetch leg may resolve to ``RPC_FAILED``;
        its keys fall through to the disk path, and cells whose backing
        blocks are unreachable are *excluded* from the answer, which then
        carries ``completeness < 1.0`` (degraded, never hung).
        """
        ring = query_ring(query)
        owner_memo: dict[str, str] = {}
        cells_by_owner = self._group_by_owner(footprint, owner_memo)
        ring_by_owner = self._group_by_owner(ring, owner_memo)

        events = []
        legs: list[str] = []
        for owner in sorted(cells_by_owner):
            leg_ctx = None if ctx is None else ctx.with_(leg=owner)
            payload = {
                "query": query,
                "cells": cells_by_owner[owner],
                "ring": ring_by_owner.get(owner, []),
                "ctx": leg_ctx,
            }
            legs.append(owner)
            if self._gossip is not None:
                events.append(
                    self.sim.process(
                        self._fetch_leg(owner, payload, parent, depth=0)
                    )
                )
            elif owner == self.node_id:
                events.append(
                    self.sim.process(self._fetch_cells_impl(payload, parent=parent))
                )
            else:
                events.append(
                    self.request_resilient(
                        owner,
                        "fetch_cells",
                        payload,
                        size=len(payload["cells"]) * 32,
                        parent=parent,
                        ctx=leg_ctx,
                    )
                )
        responses = yield self.sim.all_of(events)

        found: dict[CellKey, SummaryVector] = {}
        missing: list[CellKey] = []
        from_cache = from_rollup = 0
        for owner, response in zip(legs, responses):
            if not rpc_ok(response):
                # Owner unreachable (or shedding): treat its whole key
                # share as cache misses and try the disk path instead.
                self.counters.increment("fetch_legs_failed")
                self.recorder.record_event(
                    "fetch_leg_shed" if response is RPC_SHED else "fetch_leg_failed",
                    None if ctx is None else ctx.with_(leg=owner),
                    node=self.node_id,
                    detail={"owner": owner, "cells": len(cells_by_owner[owner])},
                )
                missing.extend(cells_by_owner[owner])
                continue
            found.update(response["found"])
            missing.extend(response["missing"])
            from_cache += response["stats"]["cached"]
            from_rollup += response["stats"]["rollup"]

        provenance = {
            "cells_from_cache": from_cache,
            "cells_from_rollup": from_rollup,
            "cells_from_disk": 0,
            "disk_blocks_read": 0,
            "rerouted": 0,
        }

        unresolved: list[CellKey] = []
        if missing and self.overload is not None and self.overload.breaker_open(
            self.sim.now
        ):
            # Circuit open under sustained overload: skip the expensive
            # disk-resolution path and answer from what the cache gave
            # us.  The holes are reported unresolved (completeness < 1),
            # never fabricated, and degraded answers are never cached.
            self.counters.increment("breaker_degraded")
            self.recorder.record_event(
                "breaker_degraded",
                ctx,
                node=self.node_id,
                detail={"missing": len(missing)},
            )
            unresolved = missing
        elif missing:
            new_cells, unresolved = yield from self._resolve_missing(
                query, missing, provenance, parent=parent, ctx=ctx
            )
            found.update(new_cells)

        cells = {key: vec for key, vec in found.items() if not vec.is_empty}
        if query.attributes is not None:
            cells = {
                key: vec.project(query.attributes) for key, vec in cells.items()
            }
        completeness = 1.0
        if unresolved:
            self.counters.increment("degraded_answers")
            provenance["cells_unresolved"] = len(unresolved)
            completeness = 1.0 - len(unresolved) / max(1, len(footprint))
            self.recorder.record_event(
                "cells_unresolved",
                ctx,
                node=self.node_id,
                detail={
                    "count": len(unresolved),
                    "completeness": completeness,
                },
            )
        return {
            "cells": cells,
            "provenance": provenance,
            "completeness": completeness,
        }

    def _fetch_leg(
        self,
        owner: str,
        payload: dict[str, Any],
        parent: Span | None,
        depth: int,
    ) -> Generator[Event, Any, Any]:
        """One fetch_cells leg under gossip: local, remote, or re-routed.

        A ``NOT_OWNER`` reply carries the responder's membership view;
        we merge it into our own (fresher evidence wins per peer), split
        the leg's keys by owner under the updated view, and recurse.
        Depth is bounded by ``gossip.max_redirects``; the final round is
        sent with ``force`` — block placement is static, so a forced
        serve is always *correct*, merely non-local.  Returns a normal
        fetch response dict, or an RPC sentinel for a whole-leg failure.
        """
        gossip = self._gossip
        assert gossip is not None
        ctx: QueryContext | None = payload.get("ctx")
        if owner == self.node_id:
            response = yield self.sim.process(
                self._fetch_cells_impl(payload, parent=parent)
            )
            return response
        if depth >= gossip.max_redirects:
            payload = dict(payload, force=True)
            self.recorder.record_event(
                "force_serve",
                ctx,
                node=self.node_id,
                detail={"owner": owner, "depth": depth},
            )
        reply = yield self.request_resilient(
            owner,
            "fetch_cells",
            payload,
            size=len(payload["cells"]) * 32,
            parent=parent,
            ctx=ctx,
        )
        if not rpc_ok(reply) or "not_owner" not in reply:
            return reply
        self.counters.increment("fetch_redirects")
        self.recorder.record_event(
            "redirect",
            ctx,
            node=self.node_id,
            detail={"from": owner, "depth": depth},
        )
        self.membership.merge(reply["not_owner"], self.sim.now)
        owner_memo: dict[str, str] = {}
        cells_by_owner = self._group_by_owner(payload["cells"], owner_memo)
        ring_by_owner = self._group_by_owner(
            payload.get("ring", []), owner_memo
        )
        sub_owners = sorted(cells_by_owner)
        subs = yield self.sim.all_of(
            [
                self.sim.process(
                    self._fetch_leg(
                        sub,
                        {
                            "query": payload["query"],
                            "cells": cells_by_owner[sub],
                            "ring": ring_by_owner.get(sub, []),
                            "ctx": None
                            if ctx is None
                            else ctx.with_(leg=sub, redirect_depth=depth + 1),
                        },
                        parent,
                        depth + 1,
                    )
                )
                for sub in sub_owners
            ]
        )
        combined: dict[str, Any] = {
            "found": {},
            "missing": [],
            "stats": {"cached": 0, "rollup": 0},
        }
        for sub, response in zip(sub_owners, subs):
            if not rpc_ok(response):
                self.counters.increment("fetch_legs_failed")
                self.recorder.record_event(
                    "fetch_leg_shed" if response is RPC_SHED else "fetch_leg_failed",
                    None
                    if ctx is None
                    else ctx.with_(leg=sub, redirect_depth=depth + 1),
                    node=self.node_id,
                    detail={"owner": sub, "cells": len(cells_by_owner[sub])},
                )
                combined["missing"].extend(cells_by_owner[sub])
                continue
            combined["found"].update(response["found"])
            combined["missing"].extend(response["missing"])
            combined["stats"]["cached"] += response["stats"]["cached"]
            combined["stats"]["rollup"] += response["stats"]["rollup"]
        return combined

    def _resolve_missing(
        self,
        query: AggregationQuery,
        missing: list[CellKey],
        provenance: dict[str, int],
        parent: Span | None = None,
        ctx: QueryContext | None = None,
    ) -> Generator[
        Event, Any, tuple[dict[CellKey, SummaryVector], list[CellKey]]
    ]:
        """Scan the backing blocks of missing cells; populate async.

        Scans always aggregate *all* attributes regardless of the query's
        attribute selection: cached cells must be reusable by any future
        query (selection is applied to the response, not the cache).

        Returns ``(new_cells, unresolved)``: cells whose backing blocks
        sit only on unreachable nodes cannot be computed — they are
        reported unresolved (degrading the answer) rather than fabricated
        as empty, and are never populated into the cache.
        """
        if query.attributes is not None:
            query = AggregationQuery(
                bbox=query.bbox,
                time_range=query.time_range,
                resolution=query.resolution,
                attributes=None,
            )
        needed: set[BlockId] = set()
        for key in missing:
            needed.update(self.catalog.blocks_for_cell(key))
        block_ids = sorted(needed)
        plan = self.catalog.blocks_by_node(block_ids)
        events = []
        scan_legs: list[tuple[str, list[BlockId]]] = []
        for node_id, ids in sorted(plan.items()):
            scan_legs.append((node_id, ids))
            if node_id == self.node_id:
                events.append(
                    self.sim.process(self.scan_locally(query, ids, parent=parent))
                )
            else:
                events.append(
                    self.request_resilient(
                        node_id,
                        "scan",
                        {"query": query, "block_ids": ids, "ctx": ctx},
                        size=1_024,
                        parent=parent,
                        ctx=None if ctx is None else ctx.with_(leg=node_id),
                    )
                )
        partials = (yield self.sim.all_of(events)) if events else []

        scanned: dict[CellKey, SummaryVector] = {}
        unread_blocks: set[BlockId] = set()
        merges = 0
        for (node_id, ids), cells in zip(scan_legs, partials):
            if not rpc_ok(cells):
                # Blocks on a dead node are unreadable until it restarts;
                # an overloaded node sheds the scan outright.  Either
                # way, every cell depending on them is degraded.
                self.counters.increment("scan_legs_failed")
                self.recorder.record_event(
                    "scan_leg_shed" if cells is RPC_SHED else "scan_leg_failed",
                    None if ctx is None else ctx.with_(leg=node_id),
                    node=self.node_id,
                    detail={"owner": node_id, "blocks": len(ids)},
                )
                unread_blocks.update(ids)
                continue
            for key, vec in cells.items():
                existing = scanned.get(key)
                if existing is None:
                    scanned[key] = vec
                else:
                    scanned[key] = existing.merge(vec)
                    merges += 1
        if merges:
            cpu = merges * self.cost.cell_merge_cost
            if self.tracer.enabled:
                self.tracer.record(
                    "merge:partials",
                    "compute",
                    self.sim.now,
                    self.sim.now + cpu,
                    parent=parent,
                    node=self.node_id,
                    attrs={"merges": merges},
                )
            yield self.sim.timeout(cpu)

        new_cells: dict[CellKey, SummaryVector] = {}
        unresolved: list[CellKey] = []
        for key in missing:
            value = scanned.get(key)
            if value is not None:
                new_cells[key] = value
                continue
            if unread_blocks and unread_blocks & set(
                self.catalog.blocks_for_cell(key)
            ):
                # Not scanned because its data was unreachable — an
                # honest hole in the answer, not a known-empty cell.
                unresolved.append(key)
            else:
                new_cells[key] = SummaryVector.empty(self.attribute_names)
        provenance["cells_from_disk"] = len(new_cells)
        provenance["disk_blocks_read"] = len(block_ids) - len(unread_blocks)

        # Fire-and-forget population on the owner nodes (separate thread
        # in the paper; here separate service-pool messages).  Unresolved
        # cells are never populated: caching an incomplete summary would
        # poison every later query with a silently wrong "complete" cell.
        by_owner: dict[str, dict[CellKey, SummaryVector]] = {}
        owner_memo: dict[str, str] = {}
        for key, vec in new_cells.items():
            owner = owner_memo.get(key.geohash)
            if owner is None:
                owner = owner_memo[key.geohash] = self._owner_of(key.geohash)
            by_owner.setdefault(owner, {})[key] = vec
        for owner, cells in sorted(by_owner.items()):
            self.network.send(
                self.node_id,
                owner,
                "populate",
                {"cells": cells},
                size=len(cells) * self.cost.cell_wire_size,
                parent=parent,
            )
        return new_cells, unresolved

"""Freshness scoring and neighborhood dispersion (paper section V-C).

Freshness combines frequency and recency: every access adds ``f_inc``
after exponentially decaying the previous score, so
``freshness(t) = sum_i f_i * exp(-lambda * (t - t_i))`` — the product of
access count and a time-decay function the paper describes.  When a
region is accessed, a configurable fraction of ``f_inc`` is *dispersed*
to the cells in its immediate spatiotemporal neighborhood (Fig. 3), so
hot regions are evicted as connected areas rather than ragged patches.
"""

from __future__ import annotations

import math

from repro.config import FreshnessConfig
from repro.core.keys import CellKey


class FreshnessTracker:
    """Applies freshness updates to cells of one node's graph.

    Updates are *batched*: both touch flavors hand the whole key list to
    :meth:`~repro.core.graph.StashGraph.touch_batch`, which applies the
    decay + increment as one vectorized column update per graph level
    instead of a Python loop over cells.  Scoring (:meth:`score`) stays a
    per-cell read for diagnostic callers; the eviction hot path scores the
    whole graph at once via :func:`repro.core.eviction.rank_victims`,
    which is bit-identical to this scalar form (both use ``np.exp``).
    """

    def __init__(self, config: FreshnessConfig):
        self.config = config
        if config.half_life <= 0:
            raise ValueError("half_life must be positive")
        self.decay_rate = math.log(2.0) / config.half_life

    def touch_cells(self, graph, keys: list[CellKey], now: float) -> int:
        """Direct access: full ``f_inc`` to each present cell.

        Returns the number of cells actually touched (absent keys are
        skipped — only resident cells carry freshness).
        """
        return graph.touch_batch(
            keys, self.config.f_inc, now, self.decay_rate, count_access=True
        )

    def disperse_to_neighborhood(
        self, graph, ring_keys: list[CellKey], now: float
    ) -> int:
        """Neighborhood dispersion: fraction of ``f_inc`` to ring cells."""
        amount = self.config.f_inc * self.config.dispersion_fraction
        return graph.touch_batch(ring_keys, amount, now, self.decay_rate)

    def score(self, cell, now: float) -> float:
        """Current decayed freshness of a cell (no mutation)."""
        return cell.decayed_freshness(now, self.decay_rate)


def neighborhood_ring(
    footprint: list[CellKey],
) -> list[CellKey]:
    """The immediate spatiotemporal neighborhood of a footprint.

    All lateral neighbors (8 spatial + 2 temporal) of footprint cells that
    are not themselves in the footprint — the grey cells of paper Fig. 3.

    General-purpose O(cells x 10) form; the query path uses
    :func:`query_ring`, which exploits the footprint being a box cover.
    """
    members = set(footprint)
    ring: dict[CellKey, None] = {}
    for key in footprint:
        for neighbor in key.lateral_neighbors():
            if neighbor not in members and neighbor not in ring:
                ring[neighbor] = None
    return list(ring)


def query_ring(query) -> list[CellKey]:
    """The neighborhood ring of a query footprint, via box geometry.

    Because a query footprint is (rectangular spatial cover) x
    (contiguous temporal keys), its ring is the spatial perimeter ring
    crossed with the time keys, plus the cover crossed with the two
    adjacent time bins — O(perimeter + cover) instead of touching every
    cell's 10 lateral neighbors.
    """
    from repro.geo.cover import covering_cells, expand_ring

    precision = query.resolution.spatial
    snapped = query.snapped_bbox()
    spatial_cover = covering_cells(snapped, precision)
    spatial_ring = expand_ring(snapped, precision)
    time_keys = query.time_range.covering_keys(query.resolution.temporal)
    ring = [CellKey(g, t) for g in spatial_ring for t in time_keys]
    before = time_keys[0].step(-1)
    after = time_keys[-1].step(1)
    ring.extend(CellKey(g, t) for g in spatial_cover for t in (before, after))
    return ring

"""The per-node STASH graph: levels of cells + PLM + eviction hooks.

``G_STASH = (V, {E_H, E_L})`` — vertices are Cells grouped into levels by
spatiotemporal resolution (paper IV-C); both edge families are computed
from cell keys on demand (see :mod:`repro.core.keys`), so the graph
stores only the level maps and the PLM.

Empty cells (zero observations) are stored explicitly: presence of a key
— empty or not — means "this bin's value is known and complete", which is
what makes roll-up recomputation sound (a missing child might have
unscanned data on disk; an empty child is known to have none).
"""

from __future__ import annotations

from typing import Iterator

from repro.core.cell import Cell
from repro.core.keys import CellKey
from repro.core.plm import PrecisionLevelMap
from repro.data.block import BlockId
from repro.errors import CacheError
from repro.geo.resolution import ResolutionSpace


class StashGraph:
    """One node's in-memory cell store (local or guest)."""

    def __init__(self, space: ResolutionSpace, name: str = "local"):
        self.space = space
        self.name = name
        #: level -> {cell key -> cell}
        self._levels: dict[int, dict[CellKey, Cell]] = {}
        self.plm = PrecisionLevelMap()

    # -- size ------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(cells) for cells in self._levels.values())

    def level_sizes(self) -> dict[int, int]:
        return {level: len(cells) for level, cells in self._levels.items() if cells}

    # -- membership --------------------------------------------------------

    def level_of(self, key: CellKey) -> int:
        return self.space.level_of(key.resolution)

    def contains(self, key: CellKey) -> bool:
        return key in self._levels.get(self.level_of(key), ())

    def get(self, key: CellKey) -> Cell | None:
        return self._levels.get(self.level_of(key), {}).get(key)

    def insert(
        self,
        cell: Cell,
        backing_blocks: frozenset[BlockId] | None = None,
    ) -> None:
        """Add a complete cell; duplicate inserts are rejected.

        ``backing_blocks`` defaults to the key's computed block set at the
        caller's partition precision being unknown here, so callers on the
        query path pass the explicit set they scanned.
        """
        level = self.level_of(cell.key)
        cells = self._levels.setdefault(level, {})
        if cell.key in cells:
            raise CacheError(f"cell {cell.key} already cached in {self.name}")
        if backing_blocks is None:
            backing_blocks = frozenset()
        # PLM first: if it rejects the key the graph stays untouched, so
        # the two structures cannot diverge (a cell in the graph but not
        # the PLM would wedge every later evict -> repopulate cycle on
        # "PLM already tracks" errors).
        self.plm.add(level, cell.key, backing_blocks)
        cells[cell.key] = cell

    def upsert(
        self, cell: Cell, backing_blocks: frozenset[BlockId] | None = None
    ) -> bool:
        """Insert, or silently keep the existing cell; True if inserted.

        Population is asynchronous (a background thread in the paper), so
        two in-flight queries may race to populate the same cell; the
        first write wins and both are correct (cells are complete values).
        """
        if self.contains(cell.key):
            return False
        self.insert(cell, backing_blocks)
        return True

    def remove(self, key: CellKey) -> Cell:
        level = self.level_of(key)
        cells = self._levels.get(level)
        if not cells or key not in cells:
            raise CacheError(f"cell {key} not cached in {self.name}")
        cell = cells.pop(key)
        self.plm.remove(level, key)
        return cell

    def clear(self) -> int:
        """Drop every cell and PLM entry (a crashed node loses its cache).

        Returns the number of cells dropped.
        """
        dropped = len(self)
        self._levels.clear()
        self.plm = PrecisionLevelMap()
        return dropped

    # -- iteration ---------------------------------------------------------

    def cells(self) -> Iterator[Cell]:
        for level_cells in self._levels.values():
            yield from level_cells.values()

    def cells_at_level(self, level: int) -> Iterator[Cell]:
        yield from self._levels.get(level, {}).values()

    # -- invalidation (real-time updates, paper IV-D) -----------------------

    def invalidate_block(self, block_id: BlockId) -> list[CellKey]:
        """Drop every cell computed from a now-stale block."""
        stale = self.plm.dependents_of_block(block_id)
        for key in stale:
            self.remove(key)
        return sorted(stale, key=str)

"""The per-node STASH graph: levels of cells + PLM + eviction hooks.

``G_STASH = (V, {E_H, E_L})`` — vertices are Cells grouped into levels by
spatiotemporal resolution (paper IV-C); both edge families are computed
from cell keys on demand (see :mod:`repro.core.keys`), so the graph
stores only the level maps and the PLM.

Empty cells (zero observations) are stored explicitly: presence of a key
— empty or not — means "this bin's value is known and complete", which is
what makes roll-up recomputation sound (a missing child might have
unscanned data on disk; an empty child is known to have none).

Freshness bookkeeping is stored *columnar*: each level carries a
:class:`FreshnessColumns` block of dense numpy arrays ``(freshness,
last_touch, access_count)`` aligned with a slot map, so the per-query
freshness touch is one gather/scatter (:meth:`StashGraph.touch_batch`)
and whole-graph eviction scoring is one vectorized ``exp`` per level
(:func:`repro.core.eviction.rank_victims`) instead of a Python loop over
every resident cell.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.core.cell import Cell
from repro.core.keys import CellKey
from repro.core.plm import PrecisionLevelMap
from repro.data.block import BlockId
from repro.errors import CacheError
from repro.geo.resolution import ResolutionSpace

#: Initial slot capacity of a level's column block.
_MIN_CAPACITY = 64


class FreshnessColumns:
    """Dense per-level freshness columns with a key -> slot index.

    Slots are kept dense with swap-remove: deleting a slot moves the last
    slot into the hole, so ``freshness[:size]`` is always a gap-free view
    the eviction kernel can score in one vectorized pass.
    """

    __slots__ = ("keys", "slot_of", "freshness", "last_touch", "access_count", "size")

    def __init__(self) -> None:
        #: Slot -> cell key (dense prefix of length ``size``).
        self.keys: list[CellKey] = []
        #: Cell key -> slot.
        self.slot_of: dict[CellKey, int] = {}
        self.freshness = np.zeros(_MIN_CAPACITY, dtype=np.float64)
        self.last_touch = np.zeros(_MIN_CAPACITY, dtype=np.float64)
        self.access_count = np.zeros(_MIN_CAPACITY, dtype=np.int64)
        self.size = 0

    def _grow(self) -> None:
        capacity = max(_MIN_CAPACITY, 2 * self.freshness.shape[0])
        for name in ("freshness", "last_touch", "access_count"):
            old = getattr(self, name)
            new = np.zeros(capacity, dtype=old.dtype)
            new[: self.size] = old[: self.size]
            setattr(self, name, new)

    def add(
        self, key: CellKey, freshness: float, last_touch: float, access_count: int
    ) -> int:
        """Assign the next dense slot to ``key``; returns the slot."""
        if self.size == self.freshness.shape[0]:
            self._grow()
        slot = self.size
        self.keys.append(key)
        self.slot_of[key] = slot
        self.freshness[slot] = freshness
        self.last_touch[slot] = last_touch
        self.access_count[slot] = access_count
        self.size += 1
        return slot

    def remove(self, key: CellKey) -> tuple[float, float, int]:
        """Free a slot (swap-remove); returns its final column values."""
        slot = self.slot_of.pop(key)
        values = (
            float(self.freshness[slot]),
            float(self.last_touch[slot]),
            int(self.access_count[slot]),
        )
        last = self.size - 1
        if slot != last:
            moved = self.keys[last]
            self.keys[slot] = moved
            self.slot_of[moved] = slot
            self.freshness[slot] = self.freshness[last]
            self.last_touch[slot] = self.last_touch[last]
            self.access_count[slot] = self.access_count[last]
        self.keys.pop()
        self.size = last
        return values


class StashGraph:
    """One node's in-memory cell store (local or guest)."""

    def __init__(self, space: ResolutionSpace, name: str = "local"):
        self.space = space
        self.name = name
        #: level -> {cell key -> cell}
        self._levels: dict[int, dict[CellKey, Cell]] = {}
        #: level -> columnar freshness store, parallel to ``_levels``.
        self._columns: dict[int, FreshnessColumns] = {}
        self.plm = PrecisionLevelMap()

    # -- size ------------------------------------------------------------

    def __len__(self) -> int:
        return sum(len(cells) for cells in self._levels.values())

    def level_sizes(self) -> dict[int, int]:
        return {level: len(cells) for level, cells in self._levels.items() if cells}

    # -- membership --------------------------------------------------------

    def level_of(self, key: CellKey) -> int:
        return self.space.level_of(key.resolution)

    def contains(self, key: CellKey) -> bool:
        return key in self._levels.get(self.level_of(key), ())

    def get(self, key: CellKey) -> Cell | None:
        return self._levels.get(self.level_of(key), {}).get(key)

    def insert(
        self,
        cell: Cell,
        backing_blocks: frozenset[BlockId] | None = None,
    ) -> None:
        """Add a complete cell; duplicate inserts are rejected.

        ``backing_blocks`` defaults to the key's computed block set at the
        caller's partition precision being unknown here, so callers on the
        query path pass the explicit set they scanned.
        """
        level = self.level_of(cell.key)
        cells = self._levels.setdefault(level, {})
        if cell.key in cells:
            raise CacheError(f"cell {cell.key} already cached in {self.name}")
        if backing_blocks is None:
            backing_blocks = frozenset()
        # PLM first: if it rejects the key the graph stays untouched, so
        # the two structures cannot diverge (a cell in the graph but not
        # the PLM would wedge every later evict -> repopulate cycle on
        # "PLM already tracks" errors).
        self.plm.add(level, cell.key, backing_blocks)
        cells[cell.key] = cell
        columns = self._columns.get(level)
        if columns is None:
            columns = self._columns[level] = FreshnessColumns()
        columns.add(cell.key, cell.freshness, cell.last_touched, cell.access_count)
        cell._attach(columns)

    def upsert(
        self, cell: Cell, backing_blocks: frozenset[BlockId] | None = None
    ) -> bool:
        """Insert, or silently keep the existing cell; True if inserted.

        Population is asynchronous (a background thread in the paper), so
        two in-flight queries may race to populate the same cell; the
        first write wins and both are correct (cells are complete values).
        """
        if self.contains(cell.key):
            return False
        self.insert(cell, backing_blocks)
        return True

    def remove(self, key: CellKey) -> Cell:
        level = self.level_of(key)
        cells = self._levels.get(level)
        if not cells or key not in cells:
            raise CacheError(f"cell {key} not cached in {self.name}")
        cell = cells.pop(key)
        self.plm.remove(level, key)
        cell._detach(*self._columns[level].remove(key))
        return cell

    def clear(self) -> int:
        """Drop every cell and PLM entry (a crashed node loses its cache).

        Returns the number of cells dropped.
        """
        dropped = len(self)
        for level, cells in self._levels.items():
            columns = self._columns.get(level)
            if columns is None:
                continue
            for cell in cells.values():
                cell._detach(*columns.remove(cell.key))
        self._levels.clear()
        self._columns.clear()
        self.plm = PrecisionLevelMap()
        return dropped

    # -- iteration ---------------------------------------------------------

    def cells(self) -> Iterator[Cell]:
        for level_cells in self._levels.values():
            yield from level_cells.values()

    def cells_at_level(self, level: int) -> Iterator[Cell]:
        yield from self._levels.get(level, {}).values()

    # -- columnar freshness kernels ----------------------------------------

    def freshness_columns(self) -> Iterator[FreshnessColumns]:
        """The non-empty per-level column blocks (eviction scoring input)."""
        for columns in self._columns.values():
            if columns.size:
                yield columns

    def touch_batch(
        self,
        keys: list[CellKey],
        amount: float,
        now: float,
        decay_rate: float,
        count_access: bool = False,
    ) -> int:
        """Apply one freshness increment to every *resident* key, batched.

        Equivalent to calling ``cell.touched(amount, now, decay_rate)``
        (plus an ``access_count`` bump when ``count_access``) on each
        present cell, but the decay + increment runs as one vectorized
        update per level.  Duplicate keys in one batch coalesce into a
        single decay step carrying ``k * amount`` — identical to ``k``
        scalar touches at the same ``now`` up to float associativity.
        Returns the number of touches applied (absent keys are skipped —
        only resident cells carry freshness).
        """
        slots_by_level: dict[int, list[int]] = {}
        touched = 0
        for key in keys:
            level = self.level_of(key)
            columns = self._columns.get(level)
            if columns is None:
                continue
            slot = columns.slot_of.get(key)
            if slot is None:
                continue
            slots_by_level.setdefault(level, []).append(slot)
            touched += 1
        for level, slots in slots_by_level.items():
            columns = self._columns[level]
            idx = np.asarray(slots, dtype=np.intp)
            if idx.size > 1:
                idx, counts = np.unique(idx, return_counts=True)
                increments = amount * counts
            else:
                counts = None
                increments = amount
            freshness = columns.freshness
            last_touch = columns.last_touch
            elapsed = np.maximum(0.0, now - last_touch[idx])
            freshness[idx] = (
                freshness[idx] * np.exp(-decay_rate * elapsed) + increments
            )
            last_touch[idx] = now
            if count_access:
                columns.access_count[idx] += 1 if counts is None else counts
        return touched

    # -- invalidation (real-time updates, paper IV-D) -----------------------

    def invalidate_block(self, block_id: BlockId) -> list[CellKey]:
        """Drop every cell computed from a now-stale block."""
        stale = self.plm.dependents_of_block(block_id)
        for key in stale:
            self.remove(key)
        return sorted(stale, key=str)

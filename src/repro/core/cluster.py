"""The STASH cluster: nodes, warm-up, preloading, and inspection helpers.

:class:`StashCluster` is the system under test in every STASH experiment.
Besides the client API inherited from
:class:`~repro.system.DistributedSystem`, it offers experiment utilities:
``warm`` (run queries only to heat the cache), ``preload_fraction``
(directly stack a fraction of a query's cells into the graphs, as the
paper does for the 50/75/100% zoom scenarios), and block invalidation
(the PLM real-time-update path).
"""

from __future__ import annotations

import numpy as np

from repro.config import DEFAULT_CONFIG, StashConfig
from repro.core.cell import Cell
from repro.core.keys import CellKey
from repro.core.node import StashNode
from repro.data.block import BlockId
from repro.data.observation import ObservationBatch
from repro.data.statistics import SummaryVector
from repro.errors import CacheError
from repro.geo.resolution import ResolutionSpace
from repro.query.model import AggregationQuery
from repro.sim.engine import Simulator
from repro.storage.backend import scan_blocks
from repro.system import DistributedSystem


class StashCluster(DistributedSystem):
    """A cluster of :class:`~repro.core.node.StashNode`."""

    def __init__(
        self,
        dataset: ObservationBatch,
        config: StashConfig = DEFAULT_CONFIG,
        sim: Simulator | None = None,
        space: ResolutionSpace | None = None,
    ):
        super().__init__(dataset, config, sim)
        self.space = space if space is not None else ResolutionSpace(1, 8)
        self.nodes: dict[str, StashNode] = {}

    def _start_nodes(self) -> None:
        for index, node_id in enumerate(self.node_ids):
            node = StashNode(
                self.sim,
                self.network,
                self.catalog,
                node_id,
                self.config,
                partitioner=self.partitioner,
                space=self.space,
                attribute_names=self.attribute_names,
                node_index=index,
                membership=self.membership_for(node_id),
            )
            self.nodes[node_id] = node
            node.start()
            if self.memberships:
                # Anti-entropy hooks: when *this node's own view* confirms
                # a death (or sees a rejoin), it repairs / hands back.
                view = self.memberships[node_id]
                view.on_dead.append(node.on_peer_confirmed_dead)
                view.on_alive.append(node.on_peer_rejoined)

    # -- cache state inspection ------------------------------------------------

    def total_cached_cells(self) -> int:
        return sum(len(node.graph) for node in self.nodes.values())

    def total_guest_cells(self) -> int:
        return sum(len(node.guest) for node in self.nodes.values())

    def counters_total(self) -> dict[str, int]:
        """Cluster-wide sum of per-node counters."""
        out: dict[str, int] = {}
        for node in self.nodes.values():
            for name, value in node.counters.as_dict().items():
                out[name] = out.get(name, 0) + value
        return out

    def owner_node(self, key: CellKey) -> StashNode:
        return self.nodes[self.partitioner.node_for(key.geohash)]

    # -- experiment utilities ----------------------------------------------------

    def warm(self, queries: list[AggregationQuery]) -> None:
        """Run queries serially just to heat the cache (results dropped)."""
        for query in queries:
            self.run_query(query)
        self.drain()

    def compute_footprint_cells(
        self, query: AggregationQuery
    ) -> dict[CellKey, SummaryVector]:
        """Complete (including empty) cell values for a query footprint.

        Computed directly from the catalog, outside simulated time; used
        for preloading and for correctness oracles.
        """
        footprint = query.footprint()
        needed: set[BlockId] = set()
        for key in footprint:
            needed.update(self.catalog.blocks_for_cell(key))
        blocks = [self.catalog.get_block(b) for b in sorted(needed)]
        scanned, _stats = scan_blocks(
            blocks, query, columnar=self.config.columnar_scan
        )
        return {
            key: scanned.get(key, SummaryVector.empty(self.attribute_names))
            for key in footprint
        }

    def preload_fraction(
        self,
        query: AggregationQuery,
        fraction: float,
        seed: int = 0,
    ) -> int:
        """Stack a fraction of a query's cells into the cache as regions.

        Reproduces the paper's zoom setup: "we have randomly stacked the
        STASH graph with *regions* covering 50%, 75% and 100% of all the
        relevant Cells".  A region here is one storage block's extent:
        cells are grouped by backing block and whole random groups are
        cached, so a cached fraction translates into a proportional
        reduction in block reads (caching a scatter of individual cells
        would leave every block still needed).  Insertion is a setup step
        — it consumes no simulated time.  Returns the cells inserted.
        """
        if not 0.0 <= fraction <= 1.0:
            raise CacheError(f"fraction must be in [0, 1], got {fraction}")
        self.start()
        cells = self.compute_footprint_cells(query)
        keys = query.footprint()
        groups: dict[tuple, list[CellKey]] = {}
        for key in keys:
            blocks = tuple(self.catalog.blocks_for_cell(key))
            group = blocks if blocks else ("empty", key.geohash)
            groups.setdefault(group, []).append(key)
        order = sorted(groups, key=str)
        rng = np.random.default_rng(seed)
        rng.shuffle(order)
        take = int(round(len(keys) * fraction))
        inserted = 0
        for group in order:
            if inserted >= take:
                break
            for key in groups[group]:
                node = self.owner_node(key)
                blocks = frozenset(self.catalog.blocks_for_cell(key))
                if node.graph.upsert(Cell(key=key, summary=cells[key]), blocks):
                    inserted += 1
        return inserted

    # -- partial evaluation (front-end mini graphs, paper IX-A) ---------------

    def submit_cells(self, query: AggregationQuery, keys: list[CellKey]):
        """Submit a partial query for an explicit cell-key list."""
        self.start()
        return self.sim.process(self._client_cells_request(query, keys))

    def run_cells(self, query: AggregationQuery, keys: list[CellKey]):
        """Resolve exactly ``keys`` (all within ``query``'s extent).

        Returns a :class:`~repro.query.model.QueryResult` whose cells are
        the non-empty members of ``keys``; requested keys absent from the
        result are known-empty.  This is the server half of the paper's
        future-work client-side STASH graph: the front-end fetches only
        the cells it is missing.
        """
        return self.sim.run(until=self.submit_cells(query, keys))

    def _client_cells_request(self, query: AggregationQuery, keys: list[CellKey]):
        from repro.query.model import QueryResult
        from repro.system import CLIENT_ID

        started = self.sim.now
        coordinator = self.coordinator_for(query)
        root = self.tracer.begin(
            "query:cells", "compute", node=CLIENT_ID, query_id=query.query_id
        )
        ctx = self.recorder.context(query.query_id)
        reply = yield self.network.request(
            CLIENT_ID,
            coordinator,
            "evaluate_cells",
            {"query": query, "cells": keys, "ctx": ctx},
            size=256 + 32 * len(keys),
            parent=root,
        )
        latency = self.sim.now - started
        self.latencies.record(latency)
        self.timeline.record_completion(self.sim.now)
        self.recorder.record_query(
            kind=query.kind,
            coordinator=coordinator,
            latency=latency,
            completeness=float(reply.get("completeness", 1.0)),
            ctx=ctx,
        )
        attribution = None
        if root is not None:
            self.tracer.end(root)
            from repro.obs.critical_path import attribute_span

            attribution = attribute_span(root)
            self.attributions.record(attribution)
        return QueryResult(
            query=query,
            cells=reply["cells"],
            latency=latency,
            provenance=reply.get("provenance", {}),
            attribution=attribution,
            completeness=float(reply.get("completeness", 1.0)),
        )

    def flush_caches(self) -> int:
        """Drop every cached cell — local graphs, guest graphs, cliques.

        The answer-changing state of a STASH cluster must live entirely
        on disk; the in-memory layer is a pure accelerator.  Flushing it
        (the most violent eviction possible) therefore must not change
        any subsequent answer — the eviction-independence metamorphic
        relation the conformance harness checks.  Routing tables are left
        alone on purpose: a stale reroute must degrade to a guest
        fallback, never to a wrong answer.  Returns cells dropped.
        """
        self.start()
        dropped = 0
        for node in self.nodes.values():
            dropped += node.graph.clear()
            dropped += node.guest.clear()
            node.guest_cliques.clear()
        return dropped

    # -- real-time updates (PLM path, paper IV-D) ------------------------------

    def invalidate_block(self, block_id: BlockId) -> int:
        """Drop every cached cell (local and guest) derived from a block."""
        dropped = 0
        for node in self.nodes.values():
            dropped += len(node.graph.invalidate_block(block_id))
            dropped += len(node.guest.invalidate_block(block_id))
        return dropped

    def ingest_live(self, batch: ObservationBatch) -> tuple[int, int]:
        """Ingest new observations into the running cluster.

        The storage layer appends the records to their blocks; every
        cached cell whose extent overlaps a touched block is dropped so
        the next access recomputes a fresh summary (paper IV-D: "the PLM
        can be adjusted during an update ... so that stale data summaries
        are recomputed in case of future access").

        Invalidation is by *extent*, not just the PLM's reverse index: a
        brand-new block may fall inside a cell that was cached as empty
        (its PLM block set does not mention the block yet), and that cell
        is stale too.  Cost: O(cached cells x touched days) — updates are
        rare relative to queries.

        Returns (blocks touched, cached cells invalidated).
        """
        self.start()
        touched = self.catalog.ingest(batch)
        by_day: dict[str, set[str]] = {}
        for block_id in touched:
            by_day.setdefault(block_id.day, set()).add(block_id.geohash)
        day_ranges = {
            day: BlockId(geohash="0", day=day).time_key.epoch_range()
            for day in by_day
        }

        def overlaps(cell_key: CellKey) -> bool:
            for day, prefixes in by_day.items():
                day_range = day_ranges[day]
                cell_range = cell_key.time_range
                if not (
                    cell_range.start <= day_range.start < cell_range.end
                    or day_range.start <= cell_range.start < day_range.end
                ):
                    continue
                geohash = cell_key.geohash
                for prefix in prefixes:
                    if prefix.startswith(geohash) or geohash.startswith(prefix):
                        return True
            return False

        invalidated = 0
        for node in self.nodes.values():
            for graph in (node.graph, node.guest):
                stale = [
                    cell.key for cell in graph.cells() if overlaps(cell.key)
                ]
                for key in stale:
                    graph.remove(key)
                invalidated += len(stale)
        return len(touched), invalidated

"""Query planning over one node's graph: cached / rolled-up / missing.

The owner-side half of the paper's evaluation strategy (IV-D, V-B):
given the footprint cells this node owns, split them into

* **cached** — resident in the graph (one O(1) lookup each),
* **rollup** — recomputable by merging resident finer cells,
* **missing** — require a disk scan of their backing blocks.

The plan carries cost drivers (lookups, merges) that the simulated node
converts into CPU time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.aggregation import RollupResult, try_rollup
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.data.statistics import SummaryVector


@dataclass
class QueryPlan:
    """Result of planning one node's share of a query footprint."""

    #: Resident cells: key -> summary.
    cached: dict[CellKey, SummaryVector] = field(default_factory=dict)
    #: Rolled-up cells: key -> rollup outcome (summary + provenance).
    rollup: dict[CellKey, RollupResult] = field(default_factory=dict)
    #: Cells that need disk.
    missing: list[CellKey] = field(default_factory=list)
    #: Cost drivers.
    lookups: int = 0
    merges: int = 0

    @property
    def found(self) -> dict[CellKey, SummaryVector]:
        """All summaries resolvable without disk (cached + rolled up)."""
        out = dict(self.cached)
        for key, result in self.rollup.items():
            out[key] = result.summary
        return out

    @property
    def hit_fraction(self) -> float:
        total = len(self.cached) + len(self.rollup) + len(self.missing)
        if total == 0:
            return 1.0
        return (len(self.cached) + len(self.rollup)) / total

    def partition_ok(self, footprint: list[CellKey]) -> bool:
        """Whether cached/rollup/missing exactly partition ``footprint``.

        The planner's core invariant, exposed so the conformance harness
        and unit tests can assert it on arbitrary plans instead of
        re-deriving the three-way set algebra at every call site.
        """
        cached, rollup = set(self.cached), set(self.rollup)
        missing = set(self.missing)
        if cached & rollup or cached & missing or rollup & missing:
            return False
        if len(self.missing) != len(missing):
            return False  # duplicate missing entries
        return cached | rollup | missing == set(footprint)


def plan_query(
    graph: StashGraph,
    footprint: list[CellKey],
    attributes: list[str],
    attempt_rollup: bool = True,
) -> QueryPlan:
    """Plan evaluation of ``footprint`` against one graph.

    Invariant (property-tested): ``cached ∪ rollup ∪ missing`` equals the
    footprint exactly, with the three sets pairwise disjoint.
    """
    plan = QueryPlan()
    for key in footprint:
        plan.lookups += 1
        cell = graph.get(key)
        if cell is not None:
            plan.cached[key] = cell.summary
            continue
        if attempt_rollup:
            result = try_rollup(graph, key, attributes)
            if result is not None:
                plan.rollup[key] = result
                plan.merges += result.merges
                continue
        plan.missing.append(key)
    return plan

"""Cell replacement: evict lowest-freshness cells past the threshold.

"STASH Cell replacement involves evicting the Cells with the lowest
freshness score till the capacity goes below a safe limit" (paper V-C-2).
Combined with freshness dispersion, whole hot regions survive eviction
as connected areas.
"""

from __future__ import annotations

import heapq

from repro.config import EvictionConfig
from repro.core.freshness import FreshnessTracker
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.errors import CacheError


class EvictionPolicy:
    """Threshold/safe-limit eviction by decayed freshness."""

    def __init__(self, config: EvictionConfig):
        if config.max_cells < 1:
            raise CacheError("max_cells must be >= 1")
        if not 0.0 < config.safe_fraction <= 1.0:
            raise CacheError("safe_fraction must be in (0, 1]")
        self.config = config
        self.evictions = 0

    @property
    def safe_limit(self) -> int:
        return max(1, int(self.config.max_cells * self.config.safe_fraction))

    def over_threshold(self, graph: StashGraph) -> bool:
        return len(graph) > self.config.max_cells

    def enforce(
        self, graph: StashGraph, tracker: FreshnessTracker, now: float
    ) -> list[CellKey]:
        """Evict until at or below the safe limit; returns evicted keys.

        No-op when the graph is under the hard threshold.  Eviction order
        is ascending decayed freshness with deterministic key tie-break.
        """
        if not self.over_threshold(graph):
            return []
        target = self.safe_limit
        excess = len(graph) - target
        # nsmallest is O(n log excess) vs a full O(n log n) sort, and the
        # (score, key) tuple is a total order (keys are unique), so the
        # victim set and its ordering match the sorted()[:excess] form
        # exactly.
        ranked = heapq.nsmallest(
            excess,
            graph.cells(),
            key=lambda cell: (tracker.score(cell, now), str(cell.key)),
        )
        victims = [cell.key for cell in ranked]
        for key in victims:
            graph.remove(key)
        self.evictions += len(victims)
        return victims

"""Cell replacement: evict lowest-freshness cells past the threshold.

"STASH Cell replacement involves evicting the Cells with the lowest
freshness score till the capacity goes below a safe limit" (paper V-C-2).
Combined with freshness dispersion, whole hot regions survive eviction
as connected areas.

Victim selection is vectorized: the graph's per-level freshness columns
are scored with one ``exp`` over a dense array (:func:`rank_victims`),
then only the boundary candidates pay the ``str(key)`` tie-break — the
scalar path paid a Python-level score *and* a key stringification for
every resident cell.  Both paths share ``np.exp`` so they produce
byte-equal scores; :func:`rank_victims_scalar` keeps the scalar form as
the equivalence oracle and benchmark baseline.
"""

from __future__ import annotations

import heapq
from bisect import bisect_right

import numpy as np

from repro.config import EvictionConfig
from repro.core.freshness import FreshnessTracker
from repro.core.graph import StashGraph
from repro.core.keys import CellKey
from repro.errors import CacheError


def rank_victims(
    graph: StashGraph, decay_rate: float, now: float, excess: int
) -> list[CellKey]:
    """The ``excess`` stalest cells, ordered by (decayed score, str(key)).

    Vectorized equivalent of ranking every cell by
    ``(tracker.score(cell, now), str(cell.key))`` and taking the first
    ``excess``: scores are computed columnwise, a partition finds the
    cut-off score, and only ties at the cut-off are broken by key string.
    """
    if excess <= 0:
        return []
    levels = list(graph.freshness_columns())
    if not levels:
        return []
    parts = []
    offsets = [0]
    for columns in levels:
        size = columns.size
        freshness = columns.freshness[:size]
        elapsed = np.maximum(0.0, now - columns.last_touch[:size])
        parts.append(freshness * np.exp(-decay_rate * elapsed))
        offsets.append(offsets[-1] + size)
    scores = parts[0] if len(parts) == 1 else np.concatenate(parts)
    total = scores.shape[0]
    excess = min(excess, total)

    def key_at(index: int) -> CellKey:
        level_index = bisect_right(offsets, index) - 1
        return levels[level_index].keys[index - offsets[level_index]]

    if excess == total:
        chosen = np.arange(total)
    else:
        cutoff = np.partition(scores, excess - 1)[excess - 1]
        below = np.flatnonzero(scores < cutoff)
        need = excess - below.shape[0]
        at_cutoff = np.flatnonzero(scores == cutoff)
        if need < at_cutoff.shape[0]:
            # Break score ties exactly as the scalar total order does:
            # ascending key string.
            tied = sorted(at_cutoff.tolist(), key=lambda i: str(key_at(i)))[:need]
        else:
            tied = at_cutoff.tolist()
        chosen = np.concatenate([below, np.asarray(tied, dtype=np.intp)])
    ranked = sorted(
        ((float(scores[i]), str(key_at(i)), key_at(i)) for i in chosen.tolist()),
        key=lambda item: (item[0], item[1]),
    )
    return [key for _, _, key in ranked]


def rank_victims_scalar(
    graph: StashGraph, tracker: FreshnessTracker, now: float, excess: int
) -> list[CellKey]:
    """Reference scalar ranking via ``tracker.score`` per cell.

    The pre-vectorization implementation, kept as the equivalence oracle
    for tests and the baseline the kernel benchmark compares against.
    ``nsmallest`` over the (score, key) total order matches the sorted
    prefix exactly (keys are unique).
    """
    ranked = heapq.nsmallest(
        excess,
        graph.cells(),
        key=lambda cell: (tracker.score(cell, now), str(cell.key)),
    )
    return [cell.key for cell in ranked]


class EvictionPolicy:
    """Threshold/safe-limit eviction by decayed freshness."""

    def __init__(self, config: EvictionConfig):
        if config.max_cells < 1:
            raise CacheError("max_cells must be >= 1")
        if not 0.0 < config.safe_fraction <= 1.0:
            raise CacheError("safe_fraction must be in (0, 1]")
        self.config = config
        self.evictions = 0

    @property
    def safe_limit(self) -> int:
        return max(1, int(self.config.max_cells * self.config.safe_fraction))

    def over_threshold(self, graph: StashGraph) -> bool:
        return len(graph) > self.config.max_cells

    def enforce(
        self, graph: StashGraph, tracker: FreshnessTracker, now: float
    ) -> list[CellKey]:
        """Evict until at or below the safe limit; returns evicted keys.

        No-op when the graph is under the hard threshold.  Eviction order
        is ascending decayed freshness with deterministic key tie-break.
        """
        if not self.over_threshold(graph):
            return []
        excess = len(graph) - self.safe_limit
        victims = rank_victims(graph, tracker.decay_rate, now, excess)
        for key in victims:
            graph.remove(key)
        self.evictions += len(victims)
        return victims

"""Precision-Level Map: in-memory completeness bookkeeping (paper IV-D).

"STASH relies on a precision-level map (PLM) to check for completeness of
the in-memory data.  The PLM is a memory-resident bitmap that associates
the Cells contained in-memory for a given level to the actual data blocks
in the distributed storage."

Our PLM keeps, per level, the mapping ``cell key -> backing block ids``
plus the reverse index ``block id -> cell keys``.  Presence of a key in
the PLM means the cell was computed from *all* of its backing blocks (or
rolled up from complete children), so membership is completeness.  The
reverse index supports real-time-update invalidation: when a block
changes, every dependent cached cell is identified in O(dependents).
"""

from __future__ import annotations

from repro.core.keys import CellKey
from repro.data.block import BlockId
from repro.errors import CacheError


class PrecisionLevelMap:
    """Per-level cell-to-block completeness map."""

    def __init__(self) -> None:
        #: level -> {cell key -> backing blocks}
        self._by_level: dict[int, dict[CellKey, frozenset[BlockId]]] = {}
        #: block id -> set of dependent cell keys
        self._by_block: dict[BlockId, set[CellKey]] = {}

    def __len__(self) -> int:
        return sum(len(cells) for cells in self._by_level.values())

    def contains(self, level: int, key: CellKey) -> bool:
        return key in self._by_level.get(level, ())

    def add(self, level: int, key: CellKey, blocks: frozenset[BlockId]) -> None:
        level_map = self._by_level.setdefault(level, {})
        if key in level_map:
            raise CacheError(f"PLM already tracks {key}")
        level_map[key] = blocks
        for block_id in blocks:
            self._by_block.setdefault(block_id, set()).add(key)

    def remove(self, level: int, key: CellKey) -> None:
        level_map = self._by_level.get(level)
        if level_map is None or key not in level_map:
            raise CacheError(f"PLM does not track {key}")
        blocks = level_map.pop(key)
        for block_id in blocks:
            dependents = self._by_block.get(block_id)
            if dependents is not None:
                dependents.discard(key)
                if not dependents:
                    del self._by_block[block_id]

    def blocks_of(self, level: int, key: CellKey) -> frozenset[BlockId]:
        try:
            return self._by_level[level][key]
        except KeyError:
            raise CacheError(f"PLM does not track {key}") from None

    def split_footprint(
        self, level: int, footprint: list[CellKey]
    ) -> tuple[list[CellKey], list[CellKey]]:
        """Partition a query footprint into (cached, missing).

        The planner's first step: cached ∪ missing == footprint and the
        two are disjoint (property-tested invariant).
        """
        level_map = self._by_level.get(level, {})
        cached = [key for key in footprint if key in level_map]
        missing = [key for key in footprint if key not in level_map]
        return cached, missing

    def dependents_of_block(self, block_id: BlockId) -> set[CellKey]:
        """Cells whose summaries were computed from ``block_id``.

        Used when the underlying store receives an update: these cells
        are stale and must be recomputed on next access (paper IV-D).
        """
        return set(self._by_block.get(block_id, ()))

    def tracked_levels(self) -> list[int]:
        return sorted(level for level, cells in self._by_level.items() if cells)

    def check_consistency(self) -> None:
        """Assert the forward and reverse indexes mirror each other.

        Every (cell -> blocks) entry must be reflected block-by-block in
        the reverse index and vice versa, with no empty dangling reverse
        entries.  Raises :class:`~repro.errors.CacheError` on the first
        violation; used by the eviction/re-insert regression tests to
        prove the remove path is the exact inverse of the insert path.
        """
        forward: dict[BlockId, set[CellKey]] = {}
        for cells in self._by_level.values():
            for key, blocks in cells.items():
                for block_id in blocks:
                    forward.setdefault(block_id, set()).add(key)
        for block_id, dependents in self._by_block.items():
            if not dependents:
                raise CacheError(f"PLM reverse index has empty entry {block_id}")
            if forward.get(block_id) != dependents:
                raise CacheError(
                    f"PLM reverse index for {block_id} disagrees with the "
                    f"forward map: {sorted(map(str, dependents))} vs "
                    f"{sorted(map(str, forward.get(block_id, ())))}"
                )
        missing = set(forward) - set(self._by_block)
        if missing:
            raise CacheError(
                f"PLM forward map references untracked blocks {sorted(map(str, missing))}"
            )

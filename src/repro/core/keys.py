"""Cell keys: the spatiotemporal labels identifying STASH Cells.

A :class:`CellKey` pairs a geohash with a :class:`~repro.geo.temporal.TimeKey`
(paper Table I: "spatial bounding box encoded as Geohash value and the
chronological range").  All graph topology — the hierarchical and lateral
edge sets — is *computed* from keys rather than stored per cell, which is
the paper's "composable vertex discovery schemes ... instead of each Cell
storing pointers to all its neighborhood Cells" (section IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.block import BlockId
from repro.errors import CacheError
from repro.geo import geohash as gh
from repro.geo.resolution import Resolution
from repro.geo.bbox import BoundingBox
from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange


@dataclass(frozen=True, slots=True, order=True)
class CellKey:
    """Identity of one STASH Cell."""

    geohash: str
    time_key: TimeKey

    def __str__(self) -> str:
        return f"{self.geohash}@{self.time_key}"

    @staticmethod
    def parse(text: str) -> "CellKey":
        try:
            geohash, time_text = text.split("@", 1)
        except ValueError:
            raise CacheError(f"cannot parse CellKey from {text!r}") from None
        return CellKey(geohash=geohash, time_key=TimeKey.parse(time_text))

    # -- identity ----------------------------------------------------------

    @property
    def resolution(self) -> Resolution:
        return Resolution(len(self.geohash), self.time_key.resolution)

    @property
    def bbox(self) -> BoundingBox:
        return gh.bbox(self.geohash)

    @property
    def time_range(self) -> TimeRange:
        return self.time_key.epoch_range()

    # -- hierarchical edges (computed, paper section IV-B) -----------------

    def spatial_parent(self) -> "CellKey | None":
        """One step lower spatial precision, same temporal bin."""
        if len(self.geohash) <= 1:
            return None
        return CellKey(gh.parent(self.geohash), self.time_key)

    def temporal_parent(self) -> "CellKey | None":
        """Same geohash, one step coarser temporal bin."""
        if self.time_key.resolution == TemporalResolution.YEAR:
            return None
        return CellKey(self.geohash, self.time_key.parent())

    def spatiotemporal_parent(self) -> "CellKey | None":
        """One step lower precision on both axes."""
        sp = self.spatial_parent()
        return sp.temporal_parent() if sp is not None else None

    def parents(self) -> list["CellKey"]:
        """All (up to 3) hierarchical parents — the paper's 3 parent kinds."""
        out = [self.spatial_parent(), self.temporal_parent(), self.spatiotemporal_parent()]
        return [k for k in out if k is not None]

    def spatial_children(self) -> list["CellKey"]:
        """The 32 one-character geohash extensions, same temporal bin."""
        return [CellKey(child, self.time_key) for child in gh.children(self.geohash)]

    def temporal_children(self) -> list["CellKey"]:
        """Same geohash, all finer temporal bins."""
        if self.time_key.resolution == TemporalResolution.HOUR:
            return []
        return [CellKey(self.geohash, child) for child in self.time_key.children()]

    def children(self, axis: str = "spatial") -> list["CellKey"]:
        """Children along one refinement axis.

        ``axis`` is 'spatial', 'temporal', or 'both' (the 32 x k cross
        product).  Aggregating any *single* axis' children reproduces this
        cell exactly — the basis of roll-up recomputation.
        """
        if axis == "spatial":
            return self.spatial_children()
        if axis == "temporal":
            return self.temporal_children()
        if axis == "both":
            return [
                CellKey(space.geohash, time.time_key)
                for space in self.spatial_children()
                for time in self.temporal_children()
            ]
        raise CacheError(f"unknown child axis {axis!r}")

    # -- lateral edges (paper Fig. 1) ---------------------------------------

    def spatial_neighbors(self) -> list["CellKey"]:
        """Up to 8 adjacent same-precision cells in the same time bin."""
        return [CellKey(nb, self.time_key) for nb in gh.neighbors(self.geohash)]

    def temporal_neighbors(self) -> list["CellKey"]:
        """The previous and next time bins for the same geohash."""
        return [CellKey(self.geohash, tk) for tk in self.time_key.neighbors()]

    def lateral_neighbors(self) -> list["CellKey"]:
        """The full lateral edge set (spatial + temporal)."""
        return self.spatial_neighbors() + self.temporal_neighbors()

    # -- storage mapping (used by the PLM) --------------------------------

    def backing_blocks(self, partition_precision: int) -> list[BlockId]:
        """The storage blocks whose raw data this cell aggregates.

        Blocks are (geohash prefix, day) units.  Spatially: a cell finer
        than the partition lives in exactly one block prefix, a coarser
        cell spans every extension of its geohash.  Temporally: the cell's
        bin maps to the days it covers.
        """
        if len(self.geohash) >= partition_precision:
            prefixes = [self.geohash[:partition_precision]]
        else:
            prefixes = [self.geohash]
            while len(prefixes[0]) < partition_precision:
                prefixes = [p + c for p in prefixes for c in gh.GEOHASH_ALPHABET]
        key = self.time_key
        if key.resolution in (TemporalResolution.DAY, TemporalResolution.HOUR):
            days = [key if key.resolution == TemporalResolution.DAY else key.parent()]
        elif key.resolution == TemporalResolution.MONTH:
            days = key.children()
        else:  # YEAR
            days = [day for month in key.children() for day in month.children()]
        return [
            BlockId(geohash=prefix, day=str(day)) for prefix in prefixes for day in days
        ]

"""Shared scaffolding for simulated distributed systems.

:class:`DistributedSystem` builds the pieces every variant needs — the
simulator, the DHT partitioner, the ingested storage catalog, the network
with a registered client endpoint, and the metric collectors — and
provides the client-side submit/run API.  Subclasses
(:class:`~repro.baselines.basic.BasicSystem`,
:class:`~repro.core.cluster.StashCluster`,
:class:`~repro.baselines.elastic.ElasticSystem`) create their node types
and register their protocol handlers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Generator

import numpy as np

from repro.config import DEFAULT_CONFIG, StashConfig
from repro.data.observation import ObservationBatch
from repro.dht.partitioner import PrefixPartitioner, _stable_hash
from repro.errors import QueryError
from repro.faults.gossip import (
    GossipAgent,
    GossipMembership,
    suspect_count,
    view_divergence,
)
from repro.faults.membership import ClusterMembership
from repro.obs.critical_path import attribute_span
from repro.obs.recorder import FlightRecorder
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.query.model import PROVENANCE_KEYS, AggregationQuery, QueryResult
from repro.sim.engine import Event, Process, Simulator
from repro.sim.metrics import (
    AttributionCollector,
    CounterSet,
    LatencyCollector,
    ThroughputTimeline,
)
from repro.storage.backend import StorageCatalog
from repro.transport.base import Transport
from repro.transport.sim_local import SimTransport

#: Network id of the (single, aggregate) client endpoint.
CLIENT_ID = "client"


class DistributedSystem(ABC):
    """A simulated cluster serving aggregation queries."""

    def __init__(
        self,
        dataset: ObservationBatch,
        config: StashConfig = DEFAULT_CONFIG,
        sim: Simulator | None = None,
        transport: Transport | None = None,
    ):
        self.config = config
        # The transport is the runtime seam: the same node logic runs on
        # the discrete-event simulator (default, deterministic) or on a
        # caller-provided backend such as the asyncio socket transport.
        if transport is None:
            transport = SimTransport(config.cost, sim=sim)
        self.transport = transport
        self.sim = transport.engine
        self.node_ids = [f"node-{i}" for i in range(config.cluster.num_nodes)]
        self.partitioner = PrefixPartitioner(
            self.node_ids, config.cluster.partition_precision
        )
        #: Per-participant liveness views under gossip; empty otherwise.
        self.memberships: dict[str, GossipMembership] = {}
        self.gossip_agents: dict[str, GossipAgent] = {}
        if config.gossip.enabled:
            participants = self.node_ids + [CLIENT_ID]
            for pid in participants:
                self.memberships[pid] = GossipMembership(
                    pid, self.partitioner, config.gossip, participants
                )
            # The client's view plays the role the shared object used to:
            # it is what ``coordinator_for`` routes through and what the
            # CLI / gauges report.
            self.membership: Any = self.memberships[CLIENT_ID]
        else:
            self.membership = ClusterMembership(self.partitioner)
        self.fault_counters = CounterSet()
        self.fault_injector: Any = None
        self._backoff_rng = np.random.default_rng(
            [config.cluster.seed, 65_537, _stable_hash(CLIENT_ID) % 2**31]
        )
        self.catalog = StorageCatalog(
            self.partitioner, block_precision=config.cluster.block_precision
        )
        self.catalog.ingest(dataset)
        self.attribute_names = dataset.attribute_names
        obs = config.observability
        self.tracer = Tracer(self.sim, enabled=obs.trace, max_spans=obs.max_spans)
        self.recorder = FlightRecorder(
            self.sim, enabled=obs.flight_recorder, slo_targets=obs.slo_targets
        )
        self.network = transport.network
        # The fabric predates the observability objects (the transport may
        # have been built by the caller), so inject them after the fact.
        self.network.tracer = self.tracer
        self.network.recorder = self.recorder
        self.network.register(CLIENT_ID)
        self.latencies = LatencyCollector()
        self.timeline = ThroughputTimeline()
        self.attributions = AttributionCollector()
        self.metrics = MetricsRegistry(self.sim)
        self.nodes: dict[str, Any] = {}
        self._nodes_started = False

    # -- subclass surface ---------------------------------------------------

    @abstractmethod
    def _start_nodes(self) -> None:
        """Create and start this system's node processes."""

    def membership_for(self, node_id: str):
        """The liveness view a node should route through.

        Under gossip every node gets its *own* view; otherwise all nodes
        share the single :class:`ClusterMembership`.
        """
        if self.memberships:
            return self.memberships[node_id]
        return self.membership

    def _start_gossip(self) -> None:
        """Spawn one gossip agent per participant (deterministic order)."""
        cfg = self.config.gossip
        for index, (pid, view) in enumerate(sorted(self.memberships.items())):
            agent = GossipAgent(
                self.sim,
                self.network,
                view,
                cfg,
                self.config.cost,
                agent_index=index,
                seed=self.config.cluster.seed,
            )
            self.gossip_agents[pid] = agent
            agent.start()

    def start(self) -> None:
        """Bring the cluster up; idempotent."""
        if not self._nodes_started:
            self._start_nodes()
            self._nodes_started = True
            if self.memberships:
                self._start_gossip()
            self._register_default_gauges()
            if self.config.faults.schedule:
                from repro.faults.injector import FaultInjector
                from repro.faults.schedule import FaultSchedule

                self.fault_injector = FaultInjector(
                    self, FaultSchedule(tuple(self.config.faults.schedule))
                )
                self.fault_injector.install()
            interval = self.config.observability.sample_interval
            if interval > 0:
                self.metrics.start(interval)

    def _register_default_gauges(self) -> None:
        """Standard per-node and cluster-wide time series (repro.obs)."""
        for node_id, node in sorted(self.nodes.items()):
            self.metrics.gauge(
                f"{node_id}.queue_depth", lambda n=node: float(n.pending_requests)
            )
            self.metrics.gauge(
                f"{node_id}.disk_reads", lambda n=node: float(n.disk.reads)
            )
            graph = getattr(node, "graph", None)
            if graph is not None:
                max_cells = self.config.eviction.max_cells
                self.metrics.gauge(
                    f"{node_id}.cache_cells", lambda g=graph: float(len(g))
                )
                self.metrics.gauge(
                    f"{node_id}.freshness_pressure",
                    lambda g=graph, m=max_cells: len(g) / m,
                )
            guest = getattr(node, "guest", None)
            if guest is not None:
                self.metrics.gauge(
                    f"{node_id}.guest_cells", lambda g=guest: float(len(g))
                )
        self.metrics.gauge(
            "network.bytes_sent", lambda: float(self.network.bytes_sent)
        )
        self.metrics.gauge(
            "network.messages_sent", lambda: float(self.network.messages_sent)
        )
        self.metrics.gauge("cluster.hit_rate", self._hit_rate)
        self.metrics.gauge(
            "cluster.live_nodes",
            lambda: float(len(self.membership.live_nodes())),
        )
        self.metrics.gauge(
            "network.messages_dropped",
            lambda: float(self.network.messages_dropped),
        )
        self.metrics.gauge("cluster.rpc_retries", self._fault_counter_total("rpc_retries"))
        self.metrics.gauge(
            "cluster.failovers", lambda: float(self.membership.failovers)
        )
        self.metrics.gauge(
            "cluster.degraded_answers",
            self._fault_counter_total("degraded_answers"),
        )
        if self.memberships:
            node_views = [self.memberships[n] for n in self.node_ids]
            self.metrics.gauge(
                "gossip.view_divergence",
                lambda v=node_views: float(view_divergence(v)),
            )
            self.metrics.gauge(
                "gossip.suspects",
                lambda v=node_views: float(suspect_count(v)),
            )
            self.metrics.gauge(
                "gossip.repair_cells_promoted",
                self._fault_counter_total("repair_cells_promoted"),
            )
            self.metrics.gauge(
                "gossip.repair_cells_shipped",
                self._fault_counter_total("repair_cells_shipped"),
            )
            self.metrics.gauge(
                "gossip.handoff_cells_streamed",
                self._fault_counter_total("handoff_cells_streamed"),
            )
        if self.config.overload.enabled:
            self.metrics.gauge(
                "cluster.requests_shed",
                self._fault_counter_total("requests_shed"),
            )
            self.metrics.gauge("cluster.breakers_open", self._breakers_open)
        if self.recorder.enabled:
            self.metrics.gauge(
                "recorder.queries", lambda: float(self.recorder.queries)
            )
            self.metrics.gauge(
                "recorder.slo_violations",
                lambda: float(self.recorder.slo_violations),
            )
            self.metrics.gauge(
                "recorder.events", lambda: float(len(self.recorder.events))
            )

    def _breakers_open(self) -> float:
        now = self.sim.now
        open_count = 0
        for node in self.nodes.values():
            guard = getattr(node, "overload", None)
            if guard is not None and guard.breaker_open(now):
                open_count += 1
        return float(open_count)

    def _fault_counter_total(self, name: str):
        """A gauge callable summing one counter across nodes + client."""

        def total() -> float:
            value = self.fault_counters.get(name)
            for node in self.nodes.values():
                counters = getattr(node, "counters", None)
                if counters is not None:
                    value += counters.get(name)
            return float(value)

        return total

    def _hit_rate(self) -> float:
        """Cache + roll-up serves over all cell resolutions so far."""
        served = missed = 0
        for node in self.nodes.values():
            counters = getattr(node, "counters", None)
            if counters is None:
                continue
            served += counters.get("cells_served_from_cache")
            served += counters.get("cells_served_from_rollup")
            served += counters.get("request_cache_hits")
            missed += counters.get("cells_populated")
            missed += counters.get("request_cache_misses")
        total = served + missed
        return served / total if total else 0.0

    # -- routing --------------------------------------------------------------

    def coordinator_for(self, query: AggregationQuery) -> str:
        """The node a client request is sent to.

        Requests land on the owner of the query's center geohash, mirroring
        geospatial request routing: interest concentrated on one region
        queues up on one node (the hotspot precondition of section VII).
        Routed through the membership view, which is the base partitioner
        verbatim until a node is declared dead, then the repaired ring.
        """
        from repro.geo.geohash import encode

        lat, lon = query.bbox.center
        code = encode(lat, lon, self.partitioner.partition_precision)
        return self.membership.node_for(code)

    # -- client API -------------------------------------------------------------

    def submit(self, query: AggregationQuery) -> Process:
        """Submit one query; returns a process event yielding QueryResult."""
        self.start()
        return self.sim.process(self._client_request(query))

    def _client_request(
        self, query: AggregationQuery
    ) -> Generator[Event, Any, QueryResult]:
        started = self.sim.now
        root = self.tracer.begin(
            "query", "compute", node=CLIENT_ID, query_id=query.query_id
        )
        ctx = self.recorder.context(query.query_id)
        if self.config.faults.active:
            reply, ctx, coordinator = yield from self._evaluate_with_retry(
                query, root, ctx
            )
        else:
            # coordinator_for is a pure routing lookup (no events, no
            # randomness), so hoisting it for the recorder is free.
            coordinator = self.coordinator_for(query)
            reply = yield self.network.request(
                CLIENT_ID,
                coordinator,
                "evaluate",
                {"query": query, "ctx": ctx},
                size=512,
                parent=root,
            )
        latency = self.sim.now - started
        self.latencies.record(latency)
        self.timeline.record_completion(self.sim.now)
        failed = reply is None
        if reply is None:
            # Every coordinator attempt failed: an explicit empty answer
            # (completeness 0) beats a hung client or a crashed run.  The
            # reply still carries the full provenance vocabulary so
            # downstream consumers (conformance harness, metrics) never
            # see a partial counter set.
            reply = {
                "cells": {},
                "provenance": {key: 0 for key in PROVENANCE_KEYS},
                "completeness": 0.0,
            }
        if not isinstance(reply, dict) or "cells" not in reply:
            raise QueryError(f"malformed evaluate reply: {reply!r}")
        completeness = float(reply.get("completeness", 1.0))
        if ctx is not None and completeness < 1.0 and not failed:
            self.recorder.record_event(
                "degraded_answer",
                ctx,
                node=coordinator,
                detail={"completeness": completeness},
            )
        self.recorder.record_query(
            kind=query.kind,
            coordinator=coordinator,
            latency=latency,
            completeness=completeness,
            ctx=ctx,
            failed=failed,
        )
        attribution = None
        if root is not None:
            self.tracer.end(root)
            attribution = attribute_span(root)
            self.attributions.record(attribution)
        return QueryResult(
            query=query,
            cells=reply["cells"],
            latency=latency,
            provenance=reply.get("provenance", {}),
            attribution=attribution,
            completeness=completeness,
        )

    def _evaluate_with_retry(
        self, query: AggregationQuery, root, ctx=None
    ) -> Generator[Event, Any, Any]:
        """Client-side evaluate with timeout, backoff, and re-routing.

        Each attempt re-resolves the coordinator through the membership
        view, so once a dead coordinator is declared the retry lands on
        the repaired ring's owner.  Returns ``(reply, ctx, coordinator)``
        for the final attempt — reply is None when every attempt timed
        out, and ctx carries that attempt's number so the recorder keys
        the outcome to the attempt that actually produced it.
        """
        faults = self.config.faults
        attempts = faults.max_retries + 1
        coordinator = self.coordinator_for(query)
        attempt_ctx = ctx
        for attempt in range(attempts):
            coordinator = self.coordinator_for(query)
            if ctx is not None:
                attempt_ctx = ctx.with_(attempt=attempt)
            started = self.sim.now
            reply_event = self.network.request(
                CLIENT_ID,
                coordinator,
                "evaluate",
                {"query": query, "ctx": attempt_ctx},
                size=512,
                parent=root,
            )
            index, value = yield self.sim.any_of(
                [reply_event, self.sim.timeout(faults.evaluate_timeout)]
            )
            if index == 0:
                return value, attempt_ctx, coordinator
            self.fault_counters.increment("client_timeouts")
            self.recorder.record_event(
                "client_timeout", attempt_ctx, node=coordinator
            )
            if self.tracer.enabled:
                self.tracer.record(
                    "timeout:evaluate",
                    "network",
                    started,
                    self.sim.now,
                    parent=root,
                    node=CLIENT_ID,
                    attrs={"to": coordinator, "attempt": attempt},
                )
            if (
                self.membership.is_live(coordinator)
                and len(self.membership.live_nodes()) > 1
            ):
                self.membership.declare_dead(coordinator)
                self.fault_counters.increment("coordinators_declared_dead")
                self.recorder.record_event(
                    "coordinator_declared_dead", attempt_ctx, node=coordinator
                )
            if attempt + 1 < attempts:
                backoff = faults.backoff_delay(attempt, self._backoff_rng)
                self.fault_counters.increment("client_retries")
                self.recorder.record_event(
                    "client_retry",
                    attempt_ctx,
                    node=coordinator,
                    detail={"backoff_s": backoff},
                )
                yield self.sim.timeout(backoff)
        self.fault_counters.increment("client_gave_up")
        self.recorder.record_event("client_gave_up", attempt_ctx, node=coordinator)
        return None, attempt_ctx, coordinator

    def run_query(self, query: AggregationQuery) -> QueryResult:
        """Submit one query and run the simulation to its completion."""
        return self.sim.run(until=self.submit(query))

    def run_serial(self, queries: list[AggregationQuery]) -> list[QueryResult]:
        """Run queries one at a time (latency experiments)."""
        return [self.run_query(q) for q in queries]

    def run_concurrent(self, queries: list[AggregationQuery]) -> list[QueryResult]:
        """Fire all queries at once and run to completion (throughput)."""
        self.start()
        done = self.sim.all_of([self.submit(q) for q in queries])
        return self.sim.run(until=done)

    def run_open_loop(
        self,
        queries: list[AggregationQuery],
        rate: float,
        seed: int = 0,
    ) -> list[QueryResult]:
        """Open-loop load: Poisson arrivals at ``rate`` requests/second.

        Unlike :meth:`run_concurrent` (everything at t=0) this models a
        stream of independent users: exponential inter-arrival times, no
        back-pressure from slow responses — the regime where queueing
        delay actually builds up.
        """
        if rate <= 0:
            raise QueryError("arrival rate must be positive")
        self.start()
        rng = np.random.default_rng(seed)
        gaps = rng.exponential(1.0 / rate, len(queries))

        submissions: list = []

        def arrival_process():
            for query, gap in zip(queries, gaps):
                yield self.sim.timeout(float(gap))
                submissions.append(self.submit(query))

        self.sim.run(until=self.sim.process(arrival_process()))
        done = self.sim.all_of(submissions)
        return self.sim.run(until=done)

    def drain(self) -> None:
        """Run any background work (population, janitors) to quiescence."""
        self.sim.run()

"""Real-socket transport: the asyncio backend of the Transport seam.

Two pieces, mirroring the sim pair:

* :class:`AsyncioEngine` — a :class:`~repro.sim.engine.Simulator`
  duck-type backed by the asyncio event loop.  It reuses the sim's
  :class:`Event`/:class:`Timeout`/:class:`Process` classes verbatim:
  those classes only ever call ``sim._schedule`` and read ``sim.now``,
  so mapping ``_schedule`` onto ``loop.call_later`` runs every node
  generator — coordinator fan-out, retry/backoff loops, gossip rounds —
  unchanged on wall-clock time.
* :class:`AsyncioNetwork` — a :class:`~repro.sim.network.Network`
  duck-type that routes local endpoints through in-process inboxes and
  remote endpoints over TCP: one lazily-connected outbound link per
  peer, a reader task per connection feeding a controller queue, and
  length-prefixed codec frames on the wire.

RPC failure semantics map onto the existing machinery: a dropped
connection resolves every RPC in flight on it to :data:`RPC_FAILED`
(the same sentinel ``request_resilient`` produces after exhausted
retries), and a silent peer is covered by the caller's own
timeout/retry loop, which runs on real timers here.
"""

from __future__ import annotations

import asyncio
import itertools
import logging
from typing import Any, Callable, Generator, Iterable

from repro.errors import NetworkError
from repro.faults.membership import RPC_FAILED
from repro.obs.recorder import FlightRecorder
from repro.obs.tracer import Span, Tracer
from repro.sim.engine import AllOf, AnyOf, Event, Process, Timeout
from repro.sim.network import Message
from repro.sim.resources import Store
from repro.transport import codec
from repro.transport.base import Transport
from repro.transport.framing import FrameDecoder, encode_frame

log = logging.getLogger(__name__)

#: Outbound connect retry schedule: the serve launcher distributes the
#: address map only after every server is bound, so retries only cover
#: slow accept loops, not absent peers.
_CONNECT_ATTEMPTS = 40
_CONNECT_RETRY_DELAY = 0.05


class AsyncioEngine:
    """Simulator-compatible scheduler on the asyncio event loop.

    ``time_scale`` maps simulated seconds (the unit every config
    duration is expressed in) to wall seconds: a ``timeout(d)`` fires
    after ``d * time_scale`` wall seconds and ``now`` advances in
    simulated-second units, so thresholds like ``rpc_timeout`` keep
    their configured meaning on either backend.
    """

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop | None = None,
        time_scale: float = 1.0,
    ):
        if time_scale <= 0:
            raise NetworkError(f"time_scale must be positive, got {time_scale}")
        if loop is None:
            try:
                loop = asyncio.get_running_loop()
            except RuntimeError:
                loop = asyncio.get_event_loop()
        self._loop = loop
        self.time_scale = time_scale
        self._t0 = self._loop.time()
        self._handles: set[asyncio.TimerHandle] = set()
        self._closed = False
        #: Failures nobody waited on (the sim raises these from ``step``;
        #: a live loop can only record and report them).
        self.unhandled: list[BaseException] = []
        self.tick_hooks: list[Callable[[float], None]] = []

    # -- Simulator surface ------------------------------------------------

    @property
    def now(self) -> float:
        """Elapsed wall time since engine start, in simulated seconds."""
        return (self._loop.time() - self._t0) / self.time_scale

    def event(self) -> Event:
        return Event(self)

    def timeout(
        self, delay: float, value: Any = None, daemon: bool = False
    ) -> Timeout:
        return Timeout(self, delay, value, daemon=daemon)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def _schedule(self, event: Event, delay: float, daemon: bool = False) -> None:
        if self._closed:
            return  # shutting down: timers must not resurrect work
        # Event has __slots__, so the handle rides in a closure instead.
        handle: asyncio.TimerHandle | None = None

        def fire() -> None:
            self._handles.discard(handle)
            self._fire(event)

        handle = self._loop.call_later(delay * self.time_scale, fire)
        self._handles.add(handle)

    def _fire(self, event: Event) -> None:
        """The asyncio analogue of ``Simulator.step`` for one event."""
        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # already processed (defensive)
            return
        if event._exception is not None and not callbacks:
            # The sim raises here; a live loop records and keeps serving.
            self.unhandled.append(event._exception)
            log.error("unawaited failure: %r", event._exception)
        for callback in callbacks:
            try:
                callback(event)
            except BaseException as exc:  # noqa: BLE001 - must not kill the loop
                self.unhandled.append(exc)
                log.exception("transport callback failed")
        if self.tick_hooks:
            for hook in self.tick_hooks:
                hook(self.now)

    def close(self) -> None:
        self._closed = True
        for handle in self._handles:
            handle.cancel()
        self._handles.clear()

    # -- asyncio bridge ----------------------------------------------------

    def as_future(self, event: Event) -> "asyncio.Future[Any]":
        """An asyncio future resolving with the event's value/exception."""
        future: asyncio.Future[Any] = self._loop.create_future()

        def _resolve(fired: Event) -> None:
            if future.done():
                return
            if fired._exception is not None:
                future.set_exception(fired._exception)
            else:
                future.set_result(fired._value)

        event.add_callback(_resolve)
        return future


class RemoteReply:
    """The reply obligation of an RPC that arrived over a socket.

    Duck-types the slice of :class:`Event` the node code touches on a
    request's ``reply_to`` — ``triggered`` (checked by the dispatch
    error path) — while the actual resolution writes a reply frame back
    on the originating connection.  Forwarding it (the coordinator's
    evaluate -> evaluate_guest reroute) re-registers it as the pending
    entry of the follow-up RPC, so the helper's answer is relayed
    straight back to the original caller.
    """

    __slots__ = ("network", "writer", "msg_id", "triggered")

    def __init__(
        self,
        network: "AsyncioNetwork",
        writer: asyncio.StreamWriter,
        msg_id: str,
    ):
        self.network = network
        self.writer = writer
        self.msg_id = msg_id
        self.triggered = False

    def resolve(self, value: Any, size: int = 0) -> None:
        self.triggered = True
        self.network._write_frame(
            self.writer, {"t": "reply", "id": self.msg_id, "value": value}
        )

    def resolve_error(self, exception: BaseException) -> None:
        self.triggered = True
        self.network._write_frame(
            self.writer, {"t": "err", "id": self.msg_id, "exc": exception}
        )


class _PeerLink:
    """One outbound connection to a peer: connect task + FIFO frame queue."""

    def __init__(self, peer_id: str, host: str, port: int):
        self.peer_id = peer_id
        self.host = host
        self.port = port
        self.outbox: asyncio.Queue[bytes] = asyncio.Queue()
        self.sent_ids: set[str] = set()
        self.task: asyncio.Task | None = None
        self.reader_task: asyncio.Task | None = None
        self.writer: asyncio.StreamWriter | None = None
        self.dead = False


class AsyncioNetwork:
    """Network-compatible fabric over TCP for one peer process.

    A *peer* is one OS process (a storage node or the client driver); its
    *endpoints* are the inboxes it registers locally (``nodeX`` plus
    ``gossip:nodeX``).  Endpoint ids map to peers exactly as the sim's
    fault rules map them: an auxiliary ``gossip:X`` endpoint lives on
    peer ``X``.
    """

    transport_name = "asyncio"

    def __init__(
        self,
        engine: AsyncioEngine,
        peer_id: str,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
    ):
        self.sim = engine
        self.engine = engine
        self.peer_id = peer_id
        self.tracer = tracer if tracer is not None else Tracer(engine, enabled=False)
        self.recorder = (
            recorder
            if recorder is not None
            else FlightRecorder(engine, enabled=False)
        )
        self._loop = engine._loop
        self._inboxes: dict[str, Store] = {}
        self._ids = itertools.count()
        self._peers: dict[str, tuple[str, int]] = {}
        self._links: dict[str, _PeerLink] = {}
        #: In-flight RPCs: wire msg id -> local Event | forwarded RemoteReply.
        self._pending: dict[str, "Event | RemoteReply"] = {}
        self._controller: asyncio.Queue[tuple[Any, asyncio.StreamWriter]] = (
            asyncio.Queue()
        )
        self._controller_task: asyncio.Task | None = None
        self._server: asyncio.base_events.Server | None = None
        self._inbound_tasks: set[asyncio.Task] = set()
        self._drain_locks: dict[int, asyncio.Lock] = {}
        self._closed = False
        self.messages_sent = 0
        self.bytes_sent = 0
        self.messages_dropped = 0
        #: Local fault-injection state (parity with the sim fabric, so
        #: injector-style tests can run against sockets too).
        self._down: set[str] = set()
        self._drop_rules: list[tuple[float, float, str | None, str | None]] = []

    # -- membership --------------------------------------------------------

    def register(self, node_id: str) -> Store:
        if node_id not in self._inboxes:
            self._inboxes[node_id] = Store(self.sim, name=f"inbox:{node_id}")
        return self._inboxes[node_id]

    def inbox(self, node_id: str) -> Store:
        try:
            return self._inboxes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    @property
    def node_ids(self) -> list[str]:
        return sorted(set(self._inboxes) | set(self._peers))

    def queue_depth(self, node_id: str) -> int:
        """Pending messages at a *local* endpoint (0 for remote peers —
        their depth is their own hotspot signal, not observable here)."""
        store = self._inboxes.get(node_id)
        return len(store) if store is not None else 0

    def set_peers(self, addresses: dict[str, tuple[str, int]]) -> None:
        """Install the cluster address map (peer id -> (host, port))."""
        for peer_id, (host, port) in addresses.items():
            if peer_id != self.peer_id:
                self._peers[peer_id] = (host, port)

    @staticmethod
    def _peer_of(endpoint: str) -> str:
        if endpoint.startswith("gossip:"):
            return endpoint.partition(":")[2]
        return endpoint

    # -- fault hooks (parity with the sim fabric) --------------------------

    def set_down(self, node_id: str, down: bool = True) -> None:
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down

    def add_drop_rule(
        self,
        start: float,
        until: float,
        src: str | None = None,
        dst: str | None = None,
    ) -> None:
        self._drop_rules.append((start, until, src, dst))

    def _should_drop(self, sender: str, recipient: str) -> bool:
        sender = self._peer_of(sender)
        recipient = self._peer_of(recipient)
        if sender in self._down or recipient in self._down:
            return True
        now = self.sim.now
        for start, until, src, dst in self._drop_rules:
            if (
                start <= now < until
                and (src is None or src == sender)
                and (dst is None or dst == recipient)
            ):
                return True
        return False

    # -- server side -------------------------------------------------------

    async def start_server(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        """Listen for inbound peers; returns the bound (host, port)."""
        self._server = await asyncio.start_server(self._on_inbound, host, port)
        self._controller_task = self._loop.create_task(self._run_controller())
        sockname = self._server.sockets[0].getsockname()
        return sockname[0], sockname[1]

    async def _on_inbound(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._inbound_tasks.add(task)
            task.add_done_callback(self._inbound_tasks.discard)
        try:
            await self._read_frames(reader, writer)
        except asyncio.CancelledError:
            pass  # close() cancelling us is a clean shutdown, not an error
        finally:
            writer.close()

    async def _read_frames(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Per-connection reader: frames -> controller queue."""
        decoder = FrameDecoder()
        while True:
            try:
                chunk = await reader.read(65536)
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            if not chunk:
                return
            for frame in decoder.feed(chunk):
                await self._controller.put((frame, writer))

    async def _run_controller(self) -> None:
        """Single dispatcher: every inbound frame, in arrival order."""
        while True:
            frame, writer = await self._controller.get()
            try:
                self._dispatch_frame(frame, writer)
            except Exception:  # noqa: BLE001 - a bad frame must not stop serving
                log.exception("failed to dispatch frame %r", frame)

    def _dispatch_frame(self, frame: dict, writer: asyncio.StreamWriter) -> None:
        kind = frame.get("t")
        if kind == "msg":
            recipient = frame["recipient"]
            store = self._inboxes.get(recipient)
            if store is None:
                log.warning(
                    "peer %s received message for unknown endpoint %r",
                    self.peer_id,
                    recipient,
                )
                return
            reply_to: RemoteReply | None = None
            if frame.get("id") is not None:
                reply_to = RemoteReply(self, writer, frame["id"])
            message = Message(
                sender=frame["sender"],
                recipient=recipient,
                kind=frame["kind"],
                payload=frame["payload"],
                size=frame.get("size", 0),
                msg_id=frame.get("id") if frame.get("id") is not None else -1,
                reply_to=reply_to,  # type: ignore[arg-type]
                delivered_at=self.sim.now,
            )
            store.put(message)
            return
        if kind in ("reply", "err"):
            pending = self._pending.pop(frame["id"], None)
            if pending is None:
                # Late reply after a timeout/drop resolution: ignore, the
                # caller has already moved on (same as a late sim reply
                # racing a fired timeout).
                return
            for link in self._links.values():
                link.sent_ids.discard(frame["id"])
            if isinstance(pending, RemoteReply):
                # Forwarded obligation: relay the answer to the origin.
                if kind == "reply":
                    pending.resolve(frame["value"])
                else:
                    pending.resolve_error(frame["exc"])
                return
            if pending.triggered:
                return  # resolved by a racing drop/close
            if kind == "reply":
                pending.succeed(frame["value"])
            else:
                pending.fail(frame["exc"])
            return
        log.warning("unknown frame type %r", kind)

    # -- client side -------------------------------------------------------

    def _link_for(self, peer_id: str) -> _PeerLink:
        link = self._links.get(peer_id)
        if link is not None and not link.dead:
            return link
        try:
            host, port = self._peers[peer_id]
        except KeyError:
            raise NetworkError(
                f"peer {self.peer_id} has no address for {peer_id!r}"
            ) from None
        link = _PeerLink(peer_id, host, port)
        link.task = self._loop.create_task(self._run_link(link))
        self._links[peer_id] = link
        return link

    async def _run_link(self, link: _PeerLink) -> None:
        try:
            reader = writer = None
            for attempt in range(_CONNECT_ATTEMPTS):
                try:
                    reader, writer = await asyncio.open_connection(
                        link.host, link.port
                    )
                    break
                except ConnectionError:
                    if attempt + 1 == _CONNECT_ATTEMPTS:
                        raise
                    await asyncio.sleep(_CONNECT_RETRY_DELAY)
            assert reader is not None and writer is not None
            link.writer = writer
            # Replies to our outbound requests come back on this socket.
            # Reader EOF (the peer closed or died) must fail the link even
            # while the writer loop sits idle waiting for the next frame.
            link.reader_task = self._loop.create_task(
                self._read_frames(reader, writer)
            )

            async def _writer_loop() -> None:
                while True:
                    data = await link.outbox.get()
                    writer.write(data)
                    await writer.drain()

            write_task = self._loop.create_task(_writer_loop())
            done, pending = await asyncio.wait(
                {link.reader_task, write_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            for task in pending:
                task.cancel()
            for task in done:
                exc = task.exception()
                if exc is not None and not isinstance(
                    exc, (ConnectionError, OSError, asyncio.CancelledError)
                ):
                    raise exc
        except (ConnectionError, OSError):
            pass
        finally:
            self._fail_link(link)

    def _fail_link(self, link: _PeerLink) -> None:
        """Connection gone: every RPC in flight on it becomes RPC_FAILED."""
        if link.dead:
            return
        link.dead = True
        if link.reader_task is not None:
            link.reader_task.cancel()
        if link.writer is not None:
            link.writer.close()
        if self._links.get(link.peer_id) is link:
            del self._links[link.peer_id]
        for msg_id in sorted(link.sent_ids):
            pending = self._pending.pop(msg_id, None)
            if pending is None:
                continue
            if isinstance(pending, RemoteReply):
                pending.resolve(RPC_FAILED)
            elif not pending.triggered:
                # The sentinel, not an exception: exactly what the
                # retry/backoff machinery yields for a hopeless peer.
                pending.succeed(RPC_FAILED)

    def _write_frame(self, writer: asyncio.StreamWriter, frame: dict) -> None:
        """Ordered sync write + lazily chained drain on one connection."""
        if writer.is_closing():
            return
        try:
            writer.write(encode_frame(frame))
        except (ConnectionError, OSError):  # pragma: no cover - race on close
            return
        lock = self._drain_locks.setdefault(id(writer), asyncio.Lock())

        async def _drain() -> None:
            async with lock:
                try:
                    await writer.drain()
                except (ConnectionError, OSError):
                    pass

        self._loop.create_task(_drain())

    # -- transport ---------------------------------------------------------

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size: int = 0,
        reply_to: "Event | RemoteReply | None" = None,
        parent: Span | None = None,
    ) -> Message:
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size=size,
            msg_id=next(self._ids),
            reply_to=reply_to,  # type: ignore[arg-type]
        )
        self.messages_sent += 1
        self.bytes_sent += size
        if (self._down or self._drop_rules) and self._should_drop(
            sender, recipient
        ):
            self.messages_dropped += 1
            return message
        if recipient in self._inboxes:
            # Local endpoint: same-process delivery, no wire.
            message.delivered_at = self.sim.now
            self._inboxes[recipient].put(message)
            return message
        peer = self._peer_of(recipient)
        wire_id: str | None = None
        if reply_to is not None:
            wire_id = f"{self.peer_id}/{message.msg_id}"
            self._pending[wire_id] = reply_to
        frame = {
            "t": "msg",
            "sender": sender,
            "recipient": recipient,
            "kind": kind,
            "payload": payload,
            "size": size,
            "id": wire_id,
        }
        try:
            link = self._link_for(peer)
        except NetworkError:
            # Unroutable peer: behave like a dropped message; the
            # caller's timeout/retry machinery takes it from here.
            if wire_id is not None:
                self._pending.pop(wire_id, None)
                if isinstance(reply_to, RemoteReply):
                    reply_to.resolve(RPC_FAILED)
                elif not reply_to.triggered:
                    reply_to.succeed(RPC_FAILED)
            self.messages_dropped += 1
            return message
        if wire_id is not None:
            link.sent_ids.add(wire_id)
        link.outbox.put_nowait(encode_frame(frame))
        return message

    def request(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size: int = 0,
        parent: Span | None = None,
    ) -> Event:
        reply = Event(self.sim)
        rpc = self.tracer.begin(
            f"rpc:{kind}",
            "network",
            parent=parent,
            node=sender,
            attrs={"to": recipient},
        )
        self.send(
            sender,
            recipient,
            kind,
            payload,
            size=size,
            reply_to=reply,
            parent=rpc if rpc is not None else parent,
        )
        if rpc is not None:
            reply.add_callback(lambda _ev: self.tracer.end(rpc))
        return reply

    def respond(self, message: Message, value: Any, size: int = 0) -> None:
        if message.reply_to is None:
            raise NetworkError(f"message {message.msg_id} expects no reply")
        self.messages_sent += 1
        self.bytes_sent += size
        if (self._down or self._drop_rules) and self._should_drop(
            message.recipient, message.sender
        ):
            self.messages_dropped += 1
            return
        if isinstance(message.reply_to, RemoteReply):
            message.reply_to.resolve(value, size=size)
        else:
            message.reply_to.succeed(value)

    def respond_error(self, message: Message, exception: BaseException) -> None:
        if message.reply_to is None:
            raise NetworkError(f"message {message.msg_id} expects no reply")
        if (self._down or self._drop_rules) and self._should_drop(
            message.recipient, message.sender
        ):
            self.messages_dropped += 1
            return
        if isinstance(message.reply_to, RemoteReply):
            message.reply_to.resolve_error(exception)
        else:
            message.reply_to.fail(exception)

    # -- lifecycle ---------------------------------------------------------

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for link in list(self._links.values()):
            if link.task is not None:
                link.task.cancel()
            self._fail_link(link)
        for wire_id, pending in sorted(self._pending.items()):
            if isinstance(pending, RemoteReply):
                continue
            if not pending.triggered:
                pending.succeed(RPC_FAILED)
        self._pending.clear()
        if self._controller_task is not None:
            self._controller_task.cancel()
        for task in list(self._inbound_tasks):
            task.cancel()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await asyncio.sleep(0)  # let cancellations unwind


class AsyncioTransport(Transport):
    """Engine + network + lifecycle for one socket-backed peer process."""

    name = "asyncio"

    def __init__(
        self,
        peer_id: str,
        loop: asyncio.AbstractEventLoop | None = None,
        time_scale: float = 1.0,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
    ):
        self._engine = AsyncioEngine(loop=loop, time_scale=time_scale)
        self._network = AsyncioNetwork(
            self._engine, peer_id, tracer=tracer, recorder=recorder
        )

    @property
    def engine(self) -> AsyncioEngine:
        return self._engine

    @property
    def network(self) -> AsyncioNetwork:
        return self._network

    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> tuple[str, int]:
        return await self._network.start_server(host, port)

    def close(self) -> None:
        """Synchronous close; prefer :meth:`aclose` inside a running loop."""
        loop = self._engine._loop
        if loop.is_running():
            loop.create_task(self._network.close())
        elif not loop.is_closed():
            loop.run_until_complete(self._network.close())
        self._engine.close()

    async def aclose(self) -> None:
        # Network first: failing in-flight RPCs to RPC_FAILED still needs
        # the engine to deliver the resolution callbacks.
        await self._network.close()
        self._engine.close()

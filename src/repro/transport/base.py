"""The transport seam: what node logic needs from its runtime.

Every node, coordinator, gossip agent, and overload guard in this repo is
written against two duck-typed handles:

* an **engine** — the :class:`~repro.sim.engine.Simulator` surface
  (``now``, ``timeout``, ``process``, ``event``, ``all_of``, ``any_of``,
  plus the internal ``_schedule`` the Event classes call), which drives
  generator processes via one-shot :class:`~repro.sim.engine.Event`
  callbacks; and
* a **network** — the :class:`~repro.sim.network.Network` surface
  (``register``/``inbox`` endpoints, ``send``/``request``/``respond``/
  ``respond_error``, fault hooks, byte accounting).

A :class:`Transport` bundles one engine with one network and a lifecycle.
The discrete-event simulator is one implementation
(:class:`~repro.transport.sim_local.SimTransport`, the deterministic
oracle-checked twin); real asyncio sockets are another
(:class:`~repro.transport.asyncio_net.AsyncioTransport`).  The node code
itself is transport-agnostic: the same generators run on either backend
because both backends speak the same Event protocol.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any


class Transport(ABC):
    """One engine + one network + a lifecycle.

    ``engine`` must be :class:`~repro.sim.engine.Simulator`-compatible
    (it is handed to nodes as their ``sim``); ``network`` must be
    :class:`~repro.sim.network.Network`-compatible.  ``name`` keys
    metrics, spans, and serve reports to the backend that produced them.
    """

    #: Backend identifier ("sim", "asyncio") — stamped into observability
    #: output so traces from different backends are distinguishable.
    name: str = "abstract"

    @property
    @abstractmethod
    def engine(self) -> Any:
        """The Simulator-compatible scheduler nodes run their processes on."""

    @property
    @abstractmethod
    def network(self) -> Any:
        """The Network-compatible fabric nodes exchange messages over."""

    @abstractmethod
    def close(self) -> None:
        """Release whatever the backend holds (sockets, timers).  Idempotent.

        The sim backend holds nothing; the asyncio backend cancels timer
        handles, closes its listening socket, drains the connection pool,
        and resolves any in-flight RPCs to ``RPC_FAILED``.
        """

    # -- convenience -------------------------------------------------------

    def __enter__(self) -> "Transport":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

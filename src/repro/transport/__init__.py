"""Transport backends: the seam between node logic and its runtime.

``repro.transport.base`` defines the interface; ``sim_local`` wraps the
discrete-event simulator (the deterministic oracle-checked twin) and
``asyncio_net`` runs the identical node code on real sockets.  See
``docs/serving.md``.
"""

from repro.transport.base import Transport

__all__ = ["Transport"]

"""Wire codec: the repo's message payloads <-> bytes.

The simulator passes payloads by reference; real sockets need a faithful
byte encoding.  The codec lowers a payload into a *tagged tree* — plain
JSON-compatible structure where every non-JSON type (tuples, sets,
``CellKey``-keyed dicts, query/summary/geometry objects, RPC sentinels,
exceptions) becomes a ``{"__t": tag, ...}`` node — then serializes the
tree with msgpack when available, JSON otherwise (the container may not
ship msgpack; the codec must not require it).

Faithfulness requirements, in equivalence-suite order of importance:

* **Floats round-trip bit-exactly** (JSON uses ``repr``; ±inf pass
  through as JSON ``Infinity``), so a :class:`SummaryVector` decoded on
  the client compares ``==`` to the simulator twin's.
* **Dicts are order-preserving and key-faithful**: every dict is encoded
  as an item *list*, so ``CellKey`` keys survive and iteration order —
  which fixes float merge order downstream — is preserved.
* **RPC sentinels keep identity**: ``RPC_FAILED`` decodes to the interned
  sentinel, so ``reply is RPC_FAILED`` works across the wire.
"""

from __future__ import annotations

import base64
import json
from typing import Any

try:  # optional accelerator; JSON is the universal fallback
    import msgpack  # type: ignore[import-not-found]
except ImportError:  # pragma: no cover - environment-dependent
    msgpack = None

import numpy as np

from repro import errors as _errors
from repro.core.keys import CellKey
from repro.data.block import BlockId
from repro.data.statistics import AttributeSummary, SummaryVector
from repro.errors import ReproError
from repro.faults.membership import _RpcSentinel
from repro.geo.bbox import BoundingBox
from repro.geo.polygon import Polygon
from repro.geo.resolution import Resolution
from repro.geo.temporal import TemporalResolution, TimeKey, TimeRange
from repro.obs.recorder import QueryContext
from repro.query.model import AggregationQuery


class CodecError(ReproError):
    """Payload contains a type the wire codec cannot carry."""


class RemoteRpcError(ReproError):
    """A server-side exception whose class the client does not know."""


#: Exception classes reconstructible by name (every repro error type).
_ERROR_CLASSES: dict[str, type[BaseException]] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, BaseException)
}


def _lower(value: Any) -> Any:
    """Recursively lower a payload value into the tagged tree."""
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, TemporalResolution):
        # IntEnum: must be tagged before the plain-int branch swallows it.
        return {"__t": "tres", "v": int(value)}
    if isinstance(value, (int, float)):
        return value
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, bytes):
        return {"__t": "bytes", "b": base64.b64encode(value).decode("ascii")}
    if isinstance(value, dict):
        # ALL dicts become item lists: keys may be CellKeys, and order
        # must survive (it fixes downstream float merge order).
        return {"__t": "map", "i": [[_lower(k), _lower(v)] for k, v in value.items()]}
    if isinstance(value, list):
        return [_lower(v) for v in value]
    if isinstance(value, tuple):
        return {"__t": "tup", "i": [_lower(v) for v in value]}
    if isinstance(value, frozenset):
        return {"__t": "fset", "i": sorted((_lower(v) for v in value), key=repr)}
    if isinstance(value, set):
        return {"__t": "set", "i": sorted((_lower(v) for v in value), key=repr)}
    if isinstance(value, CellKey):
        return {"__t": "cellkey", "s": str(value)}
    if isinstance(value, TimeKey):
        return {"__t": "timekey", "c": list(value.components)}
    if isinstance(value, TimeRange):
        return {"__t": "timerange", "s": value.start, "e": value.end}
    if isinstance(value, BlockId):
        return {"__t": "blockid", "g": value.geohash, "d": value.day}
    if isinstance(value, BoundingBox):
        return {
            "__t": "bbox",
            "b": [value.south, value.north, value.west, value.east],
        }
    if isinstance(value, Polygon):
        return {"__t": "poly", "v": [[lat, lon] for lat, lon in value.vertices]}
    if isinstance(value, Resolution):
        return {"__t": "res", "s": value.spatial, "t": int(value.temporal)}
    if isinstance(value, AttributeSummary):
        return {
            "__t": "asum",
            "v": [value.count, value.total, value.total_sq, value.minimum, value.maximum],
        }
    if isinstance(value, SummaryVector):
        return {
            "__t": "svec",
            "a": [
                [name, [s.count, s.total, s.total_sq, s.minimum, s.maximum]]
                for name, s in value._summaries.items()
            ],
        }
    if isinstance(value, AggregationQuery):
        return {
            "__t": "query",
            "bbox": _lower(value.bbox),
            "time": _lower(value.time_range),
            "res": _lower(value.resolution),
            "attrs": None if value.attributes is None else list(value.attributes),
            "poly": _lower(value.polygon),
            "kind": value.kind,
            "id": value.query_id,
        }
    if isinstance(value, QueryContext):
        return {
            "__t": "qctx",
            "q": value.query_id,
            "a": value.attempt,
            "l": value.leg,
            "r": value.redirect_depth,
        }
    if isinstance(value, _RpcSentinel):
        return {"__t": "rpc", "n": repr(value)}
    if isinstance(value, BaseException):
        return {"__t": "exc", "cls": type(value).__name__, "msg": str(value)}
    raise CodecError(f"cannot encode {type(value).__name__} for the wire")


def _raise_tree(node: dict) -> Any:
    raise CodecError(f"unknown wire tag {node.get('__t')!r}")


def _lift(node: Any) -> Any:
    """Inverse of :func:`_lower`."""
    if isinstance(node, list):
        return [_lift(v) for v in node]
    if not isinstance(node, dict):
        return node
    tag = node.get("__t")
    if tag == "map":
        return {_lift(k): _lift(v) for k, v in node["i"]}
    if tag == "tup":
        return tuple(_lift(v) for v in node["i"])
    if tag == "set":
        return {_lift(v) for v in node["i"]}
    if tag == "fset":
        return frozenset(_lift(v) for v in node["i"])
    if tag == "bytes":
        return base64.b64decode(node["b"])
    if tag == "cellkey":
        return CellKey.parse(node["s"])
    if tag == "timekey":
        return TimeKey(tuple(node["c"]))
    if tag == "timerange":
        return TimeRange(node["s"], node["e"])
    if tag == "blockid":
        return BlockId(geohash=node["g"], day=node["d"])
    if tag == "bbox":
        south, north, west, east = node["b"]
        return BoundingBox(south, north, west, east)
    if tag == "poly":
        return Polygon(tuple((lat, lon) for lat, lon in node["v"]))
    if tag == "tres":
        return TemporalResolution(node["v"])
    if tag == "res":
        return Resolution(node["s"], TemporalResolution(node["t"]))
    if tag == "asum":
        count, total, total_sq, minimum, maximum = node["v"]
        return AttributeSummary(count, total, total_sq, minimum, maximum)
    if tag == "svec":
        return SummaryVector._trusted(
            {
                name: AttributeSummary(v[0], v[1], v[2], v[3], v[4])
                for name, v in node["a"]
            }
        )
    if tag == "query":
        return AggregationQuery(
            bbox=_lift(node["bbox"]),
            time_range=_lift(node["time"]),
            resolution=_lift(node["res"]),
            attributes=None if node["attrs"] is None else tuple(node["attrs"]),
            polygon=_lift(node["poly"]),
            kind=node["kind"],
            query_id=node["id"],
        )
    if tag == "qctx":
        return QueryContext(
            query_id=node["q"], attempt=node["a"], leg=node["l"],
            redirect_depth=node["r"],
        )
    if tag == "rpc":
        return _RpcSentinel(node["n"])
    if tag == "exc":
        cls = _ERROR_CLASSES.get(node["cls"])
        if cls is not None:
            return cls(node["msg"])
        return RemoteRpcError(f"{node['cls']}: {node['msg']}")
    return _raise_tree(node)


def encode(value: Any) -> bytes:
    """Serialize one payload value to bytes."""
    tree = _lower(value)
    if msgpack is not None:
        return msgpack.packb(tree, use_bin_type=True)
    # separators: canonical compact form; allow_nan lets ±inf through
    # (AttributeSummary.empty() carries them by design).
    return json.dumps(tree, separators=(",", ":"), allow_nan=True).encode("utf-8")


def decode(data: bytes) -> Any:
    """Inverse of :func:`encode`."""
    if msgpack is not None:
        tree = msgpack.unpackb(data, raw=False, strict_map_key=False)
    else:
        tree = json.loads(data.decode("utf-8"))
    return _lift(tree)


def codec_name() -> str:
    """Which serializer backs the wire format in this process."""
    return "msgpack" if msgpack is not None else "json"

"""Length-prefixed framing for the socket transport.

Each frame is a 4-byte big-endian length followed by one codec-encoded
payload.  :class:`FrameDecoder` is an incremental parser: feed it
whatever chunk the socket produced (half a header, three frames and a
tail, ...) and it yields every complete frame — the standard defense
against TCP's stream semantics.
"""

from __future__ import annotations

import struct
from typing import Any

from repro.errors import ReproError
from repro.transport import codec

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's body.  Far above any real payload (large
#: query answers are a few MB); guards against a corrupt or hostile
#: header committing us to a multi-GB allocation.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class FramingError(ReproError):
    """Malformed frame: oversized or truncated."""


def encode_frame(value: Any) -> bytes:
    """One payload -> header + body bytes."""
    body = codec.encode(value)
    if len(body) > MAX_FRAME_BYTES:
        raise FramingError(
            f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}"
        )
    return _HEADER.pack(len(body)) + body


class FrameDecoder:
    """Incremental frame parser over an arbitrary chunking of the stream."""

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[Any]:
        """Absorb a chunk; return every frame it completed (maybe none)."""
        self._buffer.extend(data)
        out: list[Any] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return out
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > MAX_FRAME_BYTES:
                raise FramingError(
                    f"frame header claims {length} bytes "
                    f"(max {MAX_FRAME_BYTES}); corrupt stream?"
                )
            end = _HEADER.size + length
            if len(self._buffer) < end:
                return out
            body = bytes(self._buffer[_HEADER.size : end])
            del self._buffer[:end]
            out.append(codec.decode(body))

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered toward an incomplete frame."""
        return len(self._buffer)

"""The simulator as a Transport: the deterministic, oracle-checked twin.

Wraps the existing :class:`~repro.sim.engine.Simulator` and
:class:`~repro.sim.network.Network` unchanged.  Everything the oracle
harness has ever verified runs through this backend; the asyncio backend
is checked *against* it (`repro serve` replays the same workload on both
and compares answers byte-for-byte).
"""

from __future__ import annotations

from repro.config import CostModel
from repro.obs.recorder import FlightRecorder
from repro.obs.tracer import Tracer
from repro.sim.engine import Simulator
from repro.sim.network import Network
from repro.transport.base import Transport


class SimTransport(Transport):
    """Discrete-event backend: simulated time, in-process message fabric."""

    name = "sim"

    def __init__(
        self,
        cost: CostModel,
        sim: Simulator | None = None,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
    ):
        self._sim = sim if sim is not None else Simulator()
        self._network = Network(
            self._sim, cost, tracer=tracer, recorder=recorder
        )

    @property
    def engine(self) -> Simulator:
        return self._sim

    @property
    def network(self) -> Network:
        return self._network

    def close(self) -> None:
        """Nothing to release: the simulator holds no OS resources."""

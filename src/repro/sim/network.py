"""Simulated cluster network: point-to-point messages and RPC.

Every registered node owns an inbox :class:`~repro.sim.resources.Store`.
``send`` delivers a message after latency + size/bandwidth; ``request``
layers a reply event on top so server code can ``respond`` and the caller
sees a round trip with both directions paying network cost.

Message payloads are passed by reference (the simulation runs in one
address space); the *cost* of the transfer is what the byte size models.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.config import CostModel
from repro.errors import NetworkError
from repro.obs.recorder import FlightRecorder
from repro.obs.tracer import Span, Tracer
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Store


@dataclass
class Message:
    """One network message."""

    sender: str
    recipient: str
    kind: str
    payload: Any
    size: int = 0
    msg_id: int = field(default=-1)
    #: Reply event (present on RPC requests only).
    reply_to: "Event | None" = field(default=None, repr=False)
    #: Simulated enqueue time at the recipient.
    delivered_at: float = field(default=-1.0)
    #: Trace context: the span receiver-side work should parent onto
    #: (the rpc span for requests; rebound to the handler span at
    #: dispatch).  None whenever tracing is off.
    span: "Span | None" = field(default=None, repr=False, compare=False)


class Network:
    """The cluster fabric: registry of node inboxes + cost accounting."""

    def __init__(
        self,
        sim: Simulator,
        cost: CostModel,
        tracer: Tracer | None = None,
        recorder: FlightRecorder | None = None,
    ):
        self.sim = sim
        self.cost = cost
        self.tracer = tracer if tracer is not None else Tracer(sim, enabled=False)
        #: The query flight recorder; like the tracer it rides on the
        #: network object because that is the one handle every node
        #: already holds.  Disabled by default.
        self.recorder = (
            recorder if recorder is not None else FlightRecorder(sim, enabled=False)
        )
        self._inboxes: dict[str, Store] = {}
        self._ids = itertools.count()
        #: Totals for reporting.
        self.messages_sent = 0
        self.bytes_sent = 0
        #: Fault state: crashed nodes and active link rules.  While both
        #: are empty every transport path is byte-identical to the
        #: fault-free fabric (no extra events, no extra cost).
        self._down: set[str] = set()
        #: (start, until, src|None, dst|None) — drop matching messages.
        self._drop_rules: list[tuple[float, float, str | None, str | None]] = []
        #: (start, until, src|None, dst|None, extra) — add one-way latency.
        self._delay_rules: list[
            tuple[float, float, str | None, str | None, float]
        ] = []
        self.messages_dropped = 0

    # -- membership --------------------------------------------------------

    def register(self, node_id: str) -> Store:
        """Create (or return) the inbox for a node."""
        if node_id not in self._inboxes:
            self._inboxes[node_id] = Store(self.sim, name=f"inbox:{node_id}")
        return self._inboxes[node_id]

    def inbox(self, node_id: str) -> Store:
        try:
            return self._inboxes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._inboxes)

    def queue_depth(self, node_id: str) -> int:
        """Pending messages at a node — the hotspot-detection signal."""
        return len(self.inbox(node_id))

    # -- fault hooks -------------------------------------------------------

    def set_down(self, node_id: str, down: bool = True) -> None:
        """Mark a node crashed: messages to/from it are silently dropped."""
        self.inbox(node_id)  # validate
        if down:
            self._down.add(node_id)
        else:
            self._down.discard(node_id)

    def is_down(self, node_id: str) -> bool:
        return node_id in self._down

    def add_drop_rule(
        self,
        start: float,
        until: float,
        src: str | None = None,
        dst: str | None = None,
    ) -> None:
        """Drop messages matching src -> dst during [start, until)."""
        self._drop_rules.append((start, until, src, dst))

    def add_delay_rule(
        self,
        start: float,
        until: float,
        extra: float,
        src: str | None = None,
        dst: str | None = None,
    ) -> None:
        """Add ``extra`` one-way latency to matching messages."""
        self._delay_rules.append((start, until, src, dst, extra))

    @staticmethod
    def _fault_id(endpoint: str) -> str:
        """Endpoint id as seen by fault rules.

        Auxiliary endpoints (``gossip:<node>``) share their owner's fate:
        crashing or partitioning a node silences its gossip traffic too.
        """
        if endpoint.startswith("gossip:"):
            return endpoint.partition(":")[2]
        return endpoint

    def _should_drop(self, sender: str, recipient: str) -> bool:
        sender = self._fault_id(sender)
        recipient = self._fault_id(recipient)
        if sender in self._down or recipient in self._down:
            return True
        now = self.sim.now
        for start, until, src, dst in self._drop_rules:
            if (
                start <= now < until
                and (src is None or src == sender)
                and (dst is None or dst == recipient)
            ):
                return True
        return False

    def _extra_delay(self, sender: str, recipient: str) -> float:
        extra = 0.0
        now = self.sim.now
        sender = self._fault_id(sender)
        recipient = self._fault_id(recipient)
        for start, until, src, dst, amount in self._delay_rules:
            if (
                start <= now < until
                and (src is None or src == sender)
                and (dst is None or dst == recipient)
            ):
                extra += amount
        return extra

    # -- transport ---------------------------------------------------------

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size: int = 0,
        reply_to: Event | None = None,
        parent: Span | None = None,
    ) -> Message:
        """Fire-and-forget delivery after the link cost elapses."""
        inbox = self.inbox(recipient)
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size=size,
            msg_id=next(self._ids),
            reply_to=reply_to,
        )
        self.messages_sent += 1
        self.bytes_sent += size
        if (self._down or self._drop_rules) and self._should_drop(
            sender, recipient
        ):
            # Lost on the wire: no delivery event, no reply.  Callers
            # recover via timeout/retry (see StorageNode.request_resilient).
            self.messages_dropped += 1
            return message
        delay = 0.0 if sender == recipient else self.cost.network_time(size)
        if self._delay_rules:
            delay += self._extra_delay(sender, recipient)
        if self.tracer.enabled:
            message.span = parent
            if delay > 0.0:
                self.tracer.record(
                    f"net:{kind}",
                    "network",
                    self.sim.now,
                    self.sim.now + delay,
                    parent=parent,
                    node=sender,
                    attrs={"to": recipient, "bytes": size},
                )

        def deliver(_event: Event) -> None:
            message.delivered_at = self.sim.now
            inbox.put(message)

        self.sim.timeout(delay).add_callback(deliver)
        return message

    def request(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size: int = 0,
        parent: Span | None = None,
    ) -> Event:
        """RPC: send a message carrying a reply event; returns that event."""
        reply = Event(self.sim)
        rpc = self.tracer.begin(
            f"rpc:{kind}",
            "network",
            parent=parent,
            node=sender,
            attrs={"to": recipient},
        )
        self.send(
            sender,
            recipient,
            kind,
            payload,
            size=size,
            reply_to=reply,
            parent=rpc if rpc is not None else parent,
        )
        if rpc is not None:
            reply.add_callback(lambda _ev: self.tracer.end(rpc))
        return reply

    def respond(self, message: Message, value: Any, size: int = 0) -> None:
        """Server-side completion of an RPC; reply pays the return link."""
        if message.reply_to is None:
            raise NetworkError(f"message {message.msg_id} expects no reply")
        reply_event = message.reply_to
        self.messages_sent += 1
        self.bytes_sent += size
        if (self._down or self._drop_rules) and self._should_drop(
            message.recipient, message.sender
        ):
            # Responder (or caller) is down, or the return link is cut:
            # the reply vanishes and the caller's event never fires.
            self.messages_dropped += 1
            return
        delay = (
            0.0
            if message.sender == message.recipient
            else self.cost.network_time(size)
        )
        if self._delay_rules:
            delay += self._extra_delay(message.recipient, message.sender)
        if self.tracer.enabled and delay > 0.0:
            self.tracer.record(
                f"net:reply:{message.kind}",
                "network",
                self.sim.now,
                self.sim.now + delay,
                parent=message.span,
                node=message.recipient,
                attrs={"to": message.sender, "bytes": size},
            )
        self.sim.timeout(delay).add_callback(lambda _ev: reply_event.succeed(value))

    def respond_error(self, message: Message, exception: BaseException) -> None:
        """Fail the caller's reply event after the return-link latency."""
        if message.reply_to is None:
            raise NetworkError(f"message {message.msg_id} expects no reply")
        reply_event = message.reply_to
        if (self._down or self._drop_rules) and self._should_drop(
            message.recipient, message.sender
        ):
            self.messages_dropped += 1
            return
        delay = (
            0.0
            if message.sender == message.recipient
            else self.cost.network_time(0)
        )
        self.sim.timeout(delay).add_callback(lambda _ev: reply_event.fail(exception))

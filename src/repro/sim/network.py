"""Simulated cluster network: point-to-point messages and RPC.

Every registered node owns an inbox :class:`~repro.sim.resources.Store`.
``send`` delivers a message after latency + size/bandwidth; ``request``
layers a reply event on top so server code can ``respond`` and the caller
sees a round trip with both directions paying network cost.

Message payloads are passed by reference (the simulation runs in one
address space); the *cost* of the transfer is what the byte size models.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.config import CostModel
from repro.errors import NetworkError
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Store


@dataclass
class Message:
    """One network message."""

    sender: str
    recipient: str
    kind: str
    payload: Any
    size: int = 0
    msg_id: int = field(default=-1)
    #: Reply event (present on RPC requests only).
    reply_to: "Event | None" = field(default=None, repr=False)
    #: Simulated enqueue time at the recipient.
    delivered_at: float = field(default=-1.0)


class Network:
    """The cluster fabric: registry of node inboxes + cost accounting."""

    def __init__(self, sim: Simulator, cost: CostModel):
        self.sim = sim
        self.cost = cost
        self._inboxes: dict[str, Store] = {}
        self._ids = itertools.count()
        #: Totals for reporting.
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- membership --------------------------------------------------------

    def register(self, node_id: str) -> Store:
        """Create (or return) the inbox for a node."""
        if node_id not in self._inboxes:
            self._inboxes[node_id] = Store(self.sim, name=f"inbox:{node_id}")
        return self._inboxes[node_id]

    def inbox(self, node_id: str) -> Store:
        try:
            return self._inboxes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._inboxes)

    def queue_depth(self, node_id: str) -> int:
        """Pending messages at a node — the hotspot-detection signal."""
        return len(self.inbox(node_id))

    # -- transport ---------------------------------------------------------

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size: int = 0,
        reply_to: Event | None = None,
    ) -> Message:
        """Fire-and-forget delivery after the link cost elapses."""
        inbox = self.inbox(recipient)
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size=size,
            msg_id=next(self._ids),
            reply_to=reply_to,
        )
        self.messages_sent += 1
        self.bytes_sent += size
        delay = 0.0 if sender == recipient else self.cost.network_time(size)

        def deliver(_event: Event) -> None:
            message.delivered_at = self.sim.now
            inbox.put(message)

        self.sim.timeout(delay).add_callback(deliver)
        return message

    def request(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size: int = 0,
    ) -> Event:
        """RPC: send a message carrying a reply event; returns that event."""
        reply = Event(self.sim)
        self.send(sender, recipient, kind, payload, size=size, reply_to=reply)
        return reply

    def respond(self, message: Message, value: Any, size: int = 0) -> None:
        """Server-side completion of an RPC; reply pays the return link."""
        if message.reply_to is None:
            raise NetworkError(f"message {message.msg_id} expects no reply")
        reply_event = message.reply_to
        self.messages_sent += 1
        self.bytes_sent += size
        delay = (
            0.0
            if message.sender == message.recipient
            else self.cost.network_time(size)
        )
        self.sim.timeout(delay).add_callback(lambda _ev: reply_event.succeed(value))

    def respond_error(self, message: Message, exception: BaseException) -> None:
        """Fail the caller's reply event after the return-link latency."""
        if message.reply_to is None:
            raise NetworkError(f"message {message.msg_id} expects no reply")
        reply_event = message.reply_to
        delay = (
            0.0
            if message.sender == message.recipient
            else self.cost.network_time(0)
        )
        self.sim.timeout(delay).add_callback(lambda _ev: reply_event.fail(exception))

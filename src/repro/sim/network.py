"""Simulated cluster network: point-to-point messages and RPC.

Every registered node owns an inbox :class:`~repro.sim.resources.Store`.
``send`` delivers a message after latency + size/bandwidth; ``request``
layers a reply event on top so server code can ``respond`` and the caller
sees a round trip with both directions paying network cost.

Message payloads are passed by reference (the simulation runs in one
address space); the *cost* of the transfer is what the byte size models.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from repro.config import CostModel
from repro.errors import NetworkError
from repro.obs.tracer import Span, Tracer
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Store


@dataclass
class Message:
    """One network message."""

    sender: str
    recipient: str
    kind: str
    payload: Any
    size: int = 0
    msg_id: int = field(default=-1)
    #: Reply event (present on RPC requests only).
    reply_to: "Event | None" = field(default=None, repr=False)
    #: Simulated enqueue time at the recipient.
    delivered_at: float = field(default=-1.0)
    #: Trace context: the span receiver-side work should parent onto
    #: (the rpc span for requests; rebound to the handler span at
    #: dispatch).  None whenever tracing is off.
    span: "Span | None" = field(default=None, repr=False, compare=False)


class Network:
    """The cluster fabric: registry of node inboxes + cost accounting."""

    def __init__(self, sim: Simulator, cost: CostModel, tracer: Tracer | None = None):
        self.sim = sim
        self.cost = cost
        self.tracer = tracer if tracer is not None else Tracer(sim, enabled=False)
        self._inboxes: dict[str, Store] = {}
        self._ids = itertools.count()
        #: Totals for reporting.
        self.messages_sent = 0
        self.bytes_sent = 0

    # -- membership --------------------------------------------------------

    def register(self, node_id: str) -> Store:
        """Create (or return) the inbox for a node."""
        if node_id not in self._inboxes:
            self._inboxes[node_id] = Store(self.sim, name=f"inbox:{node_id}")
        return self._inboxes[node_id]

    def inbox(self, node_id: str) -> Store:
        try:
            return self._inboxes[node_id]
        except KeyError:
            raise NetworkError(f"unknown node {node_id!r}") from None

    @property
    def node_ids(self) -> list[str]:
        return sorted(self._inboxes)

    def queue_depth(self, node_id: str) -> int:
        """Pending messages at a node — the hotspot-detection signal."""
        return len(self.inbox(node_id))

    # -- transport ---------------------------------------------------------

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size: int = 0,
        reply_to: Event | None = None,
        parent: Span | None = None,
    ) -> Message:
        """Fire-and-forget delivery after the link cost elapses."""
        inbox = self.inbox(recipient)
        message = Message(
            sender=sender,
            recipient=recipient,
            kind=kind,
            payload=payload,
            size=size,
            msg_id=next(self._ids),
            reply_to=reply_to,
        )
        self.messages_sent += 1
        self.bytes_sent += size
        delay = 0.0 if sender == recipient else self.cost.network_time(size)
        if self.tracer.enabled:
            message.span = parent
            if delay > 0.0:
                self.tracer.record(
                    f"net:{kind}",
                    "network",
                    self.sim.now,
                    self.sim.now + delay,
                    parent=parent,
                    node=sender,
                    attrs={"to": recipient, "bytes": size},
                )

        def deliver(_event: Event) -> None:
            message.delivered_at = self.sim.now
            inbox.put(message)

        self.sim.timeout(delay).add_callback(deliver)
        return message

    def request(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size: int = 0,
        parent: Span | None = None,
    ) -> Event:
        """RPC: send a message carrying a reply event; returns that event."""
        reply = Event(self.sim)
        rpc = self.tracer.begin(
            f"rpc:{kind}",
            "network",
            parent=parent,
            node=sender,
            attrs={"to": recipient},
        )
        self.send(
            sender,
            recipient,
            kind,
            payload,
            size=size,
            reply_to=reply,
            parent=rpc if rpc is not None else parent,
        )
        if rpc is not None:
            reply.add_callback(lambda _ev: self.tracer.end(rpc))
        return reply

    def respond(self, message: Message, value: Any, size: int = 0) -> None:
        """Server-side completion of an RPC; reply pays the return link."""
        if message.reply_to is None:
            raise NetworkError(f"message {message.msg_id} expects no reply")
        reply_event = message.reply_to
        self.messages_sent += 1
        self.bytes_sent += size
        delay = (
            0.0
            if message.sender == message.recipient
            else self.cost.network_time(size)
        )
        if self.tracer.enabled and delay > 0.0:
            self.tracer.record(
                f"net:reply:{message.kind}",
                "network",
                self.sim.now,
                self.sim.now + delay,
                parent=message.span,
                node=message.recipient,
                attrs={"to": message.sender, "bytes": size},
            )
        self.sim.timeout(delay).add_callback(lambda _ev: reply_event.succeed(value))

    def respond_error(self, message: Message, exception: BaseException) -> None:
        """Fail the caller's reply event after the return-link latency."""
        if message.reply_to is None:
            raise NetworkError(f"message {message.msg_id} expects no reply")
        reply_event = message.reply_to
        delay = (
            0.0
            if message.sender == message.recipient
            else self.cost.network_time(0)
        )
        self.sim.timeout(delay).add_callback(lambda _ev: reply_event.fail(exception))

"""Discrete-event simulation core (SimPy-style, dependency-free).

A :class:`Simulator` owns a time-ordered event heap.  User code is written
as generator *processes* that ``yield`` :class:`Event` objects; the
simulator resumes each process when the yielded event fires, delivering
the event's value as the result of the ``yield`` expression (or raising
the event's exception).

Determinism: ties in fire time are broken by a monotonically increasing
sequence number, so a given program produces one canonical execution.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable

from repro.errors import SimulationError

#: Sentinel for "event has not produced a value yet".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    Life cycle: *pending* -> *triggered* (``succeed``/``fail`` called,
    scheduled on the heap) -> *processed* (callbacks ran).
    """

    __slots__ = ("sim", "callbacks", "_value", "_exception", "_triggered")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: list[Callable[[Event], None]] | None = []
        self._value: Any = _PENDING
        self._exception: BaseException | None = None
        self._triggered = False

    # -- state ----------------------------------------------------------

    @property
    def triggered(self) -> bool:
        """True once succeed/fail has been called."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        if not self._triggered:
            raise SimulationError("event not yet triggered")
        return self._exception is None

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event has no value yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    # -- triggering ----------------------------------------------------------

    def succeed(self, value: Any = None) -> "Event":
        """Mark the event successful; it fires at the current sim time."""
        if self._triggered:
            raise SimulationError("event already triggered")
        self._triggered = True
        self._value = value
        self.sim._schedule(self, delay=0.0)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Mark the event failed; waiters see the exception raised."""
        if self._triggered:
            raise SimulationError("event already triggered")
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        self._triggered = True
        self._value = None
        self._exception = exception
        self.sim._schedule(self, delay=0.0)
        return self

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately at the current time.
            callback(self)
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that fires after a fixed simulated delay.

    A **daemon** timeout is background housekeeping (gossip rounds,
    periodic sweeps): it fires normally while the simulation has live
    work, but pending daemon timeouts alone do not keep ``run()`` alive
    — the schedule is considered drained when only daemons remain.
    """

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        daemon: bool = False,
    ):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        super().__init__(sim)
        self.delay = delay
        self._triggered = True
        self._value = value
        sim._schedule(self, delay=delay, daemon=daemon)


class Process(Event):
    """A running generator coroutine; is itself an event (fires on return).

    The wrapped generator yields :class:`Event` objects.  When a yielded
    event fires successfully, the generator resumes with its value; when
    it fires with a failure, the exception is thrown into the generator.
    The process event succeeds with the generator's return value.
    """

    __slots__ = ("_generator",)

    def __init__(self, sim: "Simulator", generator: Generator[Event, Any, Any]):
        super().__init__(sim)
        self._generator = generator
        # Kick off at the current simulated time.
        init = Event(sim)
        init._triggered = True
        init._value = None
        init.add_callback(self._resume)
        sim._schedule(init, delay=0.0)

    def _resume(self, fired: Event) -> None:
        if self._triggered:
            raise SimulationError("resuming a finished process")
        try:
            if fired._exception is not None:
                target = self._generator.throw(fired._exception)
            else:
                target = self._generator.send(fired._value)
        except StopIteration as stop:
            self._triggered = True
            self._value = stop.value
            self.sim._schedule(self, delay=0.0)
            return
        except BaseException as exc:  # generator raised: propagate via event
            self._triggered = True
            self._exception = exc
            self._value = None
            self.sim._schedule(self, delay=0.0)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {type(target).__name__}, expected Event"
            )
        if target.sim is not self.sim:
            raise SimulationError("process yielded an event from another simulator")
        target.add_callback(self._resume)


class AllOf(Event):
    """Fires when every child event has fired; value is the list of values.

    Fails fast with the first child failure.
    """

    __slots__ = ("_pending", "_results", "_failed")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        self._results: list[Any] = [None] * len(events)
        self._pending = len(events)
        self._failed = False
        if not events:
            self.succeed([])
            return
        for i, event in enumerate(events):
            event.add_callback(lambda ev, i=i: self._on_child(i, ev))

    def _on_child(self, index: int, event: Event) -> None:
        if self._failed or self._triggered:
            return
        if event._exception is not None:
            self._failed = True
            self.fail(event._exception)
            return
        self._results[index] = event._value
        self._pending -= 1
        if self._pending == 0:
            self.succeed(list(self._results))


class AnyOf(Event):
    """Fires when the first child event fires; value is (index, value)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        events = list(events)
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        for i, event in enumerate(events):
            event.add_callback(lambda ev, i=i: self._on_child(i, ev))

    def _on_child(self, index: int, event: Event) -> None:
        if self._triggered:
            return
        if event._exception is not None:
            self.fail(event._exception)
        else:
            self.succeed((index, event._value))


class Simulator:
    """The event loop: a heap of (time, sequence, event, daemon)."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event, bool]] = []
        self._sequence = 0
        #: Number of scheduled non-daemon entries.  ``run()`` drains only
        #: while this is positive; daemon timeouts alone don't count as work.
        self._live = 0
        #: Passive observers called as ``hook(now)`` after every processed
        #: event.  Hooks must only *read* simulation state (metrics
        #: sampling, progress reporting); scheduling from a hook would
        #: break the determinism contract.
        self.tick_hooks: list[Callable[[float], None]] = []

    # -- factory helpers ------------------------------------------------

    def event(self) -> Event:
        return Event(self)

    def timeout(
        self, delay: float, value: Any = None, daemon: bool = False
    ) -> Timeout:
        return Timeout(self, delay, value, daemon=daemon)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- scheduling --------------------------------------------------------

    def _schedule(self, event: Event, delay: float, daemon: bool = False) -> None:
        heapq.heappush(
            self._heap, (self.now + delay, self._sequence, event, daemon)
        )
        self._sequence += 1
        if not daemon:
            self._live += 1

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf when idle."""
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process exactly one scheduled event."""
        if not self._heap:
            raise SimulationError("step() on an empty schedule")
        time, _seq, event, daemon = heapq.heappop(self._heap)
        if not daemon:
            self._live -= 1
        self.now = time
        callbacks, event.callbacks = event.callbacks, None
        assert callbacks is not None
        if event._exception is not None and not callbacks:
            # A failure nobody waits on would otherwise vanish silently.
            raise event._exception
        for callback in callbacks:
            callback(event)
        if self.tick_hooks:
            for hook in self.tick_hooks:
                hook(self.now)

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run until the schedule drains, a deadline, or an event fires.

        With an :class:`Event` as ``until``, returns that event's value.
        With a float, stops as soon as the clock would pass it.  Unhandled
        process failures surface here as raised exceptions.
        """
        if isinstance(until, Event):
            sentinel = until
            while not sentinel.processed:
                # Daemon timeouts only reschedule themselves; if they are
                # all that remains, the awaited event can never fire.
                if not self._heap or self._live == 0:
                    raise SimulationError(
                        "simulation ran dry before the awaited event fired"
                    )
                self.step()
            return sentinel.value
        deadline = float("inf") if until is None else float(until)
        if deadline < self.now:
            raise SimulationError("run(until) deadline is in the past")
        while self._heap and self._heap[0][0] <= deadline:
            if until is None and self._live == 0:
                break  # drained: only daemon housekeeping left
            self.step()
        if until is not None:
            self.now = deadline
        return None

"""Per-node disk model: seek + streaming throughput with channel contention.

Reads of storage blocks are the dominant cost the STASH cache removes
(paper RQ-1); each node owns one :class:`Disk` whose read time is
``seek + bytes * data_scale / bandwidth``, serialized over a bounded
number of channels so concurrent cold queries contend realistically.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.config import CostModel
from repro.obs.tracer import Span, Tracer
from repro.sim.engine import Event, Simulator
from repro.sim.resources import Resource


class Disk:
    """One node's disk."""

    def __init__(
        self,
        sim: Simulator,
        cost: CostModel,
        node_id: str,
        channels: int = 2,
        tracer: Tracer | None = None,
    ):
        self.sim = sim
        self.cost = cost
        self.node_id = node_id
        self.tracer = tracer
        self._channel = Resource(sim, channels, name=f"disk:{node_id}")
        #: Fault-injection multiplier on read time (1.0 = healthy).
        self.slow_factor = 1.0
        #: Totals for reporting.
        self.reads = 0
        self.bytes_read = 0

    def read(self, nbytes: int, parent: Span | None = None) -> "Event":
        """Process-event that completes when the read finishes."""
        return self.sim.process(self._read(nbytes, parent))

    def _read(
        self, nbytes: int, parent: Span | None = None
    ) -> Generator[Event, Any, int]:
        queued_at = self.sim.now
        yield self._channel.acquire()
        try:
            self.reads += 1
            self.bytes_read += nbytes
            dt = self.cost.disk_read_time(nbytes)
            if self.slow_factor != 1.0:
                dt *= self.slow_factor
            if self.tracer is not None and self.tracer.enabled:
                now = self.sim.now
                if now > queued_at:
                    self.tracer.record(
                        "disk:wait",
                        "queueing",
                        queued_at,
                        now,
                        parent=parent,
                        node=self.node_id,
                    )
                self.tracer.record(
                    "disk:read",
                    "disk",
                    now,
                    now + dt,
                    parent=parent,
                    node=self.node_id,
                    attrs={"bytes": nbytes},
                )
            yield self.sim.timeout(dt)
        finally:
            self._channel.release()
        return nbytes

    def utilization(self) -> float:
        return self._channel.utilization()

"""Measurement collectors for simulated experiments.

These aggregate the quantities the paper's figures plot: per-query
latency distributions (Figs 6a, 7, 8), sustained throughput (Fig 6b),
and responses-per-second timelines (Fig 6d).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import SimulationError


class LatencyCollector:
    """Accumulates per-query latencies (simulated seconds)."""

    def __init__(self, name: str = "latency"):
        self.name = name
        self._values: list[float] = []

    def record(self, latency: float) -> None:
        if latency < 0:
            raise SimulationError(f"negative latency {latency}")
        self._values.append(latency)

    def __len__(self) -> int:
        return len(self._values)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._values, dtype=np.float64)

    def mean(self) -> float:
        if not self._values:
            raise SimulationError("no latencies recorded")
        return float(np.mean(self._values))

    def percentile(self, q: float) -> float:
        if not self._values:
            raise SimulationError("no latencies recorded")
        from repro.stats import percentile

        return percentile(self._values, q)

    def summary(self) -> dict[str, float]:
        return {
            "count": float(len(self)),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.percentile(100),
        }


class ThroughputTimeline:
    """Records request completion times; derives rate series & totals."""

    def __init__(self, name: str = "throughput"):
        self.name = name
        self._completions: list[float] = []

    def record_completion(self, at_time: float) -> None:
        self._completions.append(at_time)

    def __len__(self) -> int:
        return len(self._completions)

    @property
    def completions(self) -> np.ndarray:
        return np.sort(np.asarray(self._completions, dtype=np.float64))

    def total_duration(self) -> float:
        """Time of the last completion (the paper's throughput basis)."""
        if not self._completions:
            raise SimulationError("no completions recorded")
        return float(max(self._completions))

    def overall_rate(self) -> float:
        """Requests per simulated second over the whole run."""
        duration = self.total_duration()
        if duration <= 0:
            raise SimulationError("cannot compute rate over zero duration")
        return len(self._completions) / duration

    def per_second_series(self, bin_width: float = 1.0) -> np.ndarray:
        """Responses per ``bin_width`` seconds from t=0 (paper Fig. 6d)."""
        if bin_width <= 0:
            raise SimulationError("bin_width must be positive")
        done = self.completions
        if done.size == 0:
            return np.zeros(0, dtype=np.int64)
        nbins = int(np.floor(done[-1] / bin_width)) + 1
        idx = np.minimum((done / bin_width).astype(np.int64), nbins - 1)
        return np.bincount(idx, minlength=nbins)

    def cumulative_series(self, bin_width: float = 1.0) -> np.ndarray:
        """Cumulative completions per time bin."""
        return np.cumsum(self.per_second_series(bin_width))


@dataclass
class CounterSet:
    """Named monotonically increasing counters (cache hits, disk reads...)."""

    counts: dict[str, int] = field(default_factory=dict)

    def increment(self, name: str, by: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + by

    def get(self, name: str) -> int:
        return self.counts.get(name, 0)

    def as_dict(self) -> dict[str, int]:
        return dict(self.counts)

    def ratio(self, numerator: str, denominator: str) -> float:
        denom = self.get(denominator)
        if denom == 0:
            raise SimulationError(f"counter {denominator!r} is zero")
        return self.get(numerator) / denom


class AttributionCollector:
    """Accumulates per-query latency attributions (seconds per category).

    The per-query dicts come from
    :func:`repro.obs.critical_path.attribute_span`; this collector is the
    attribution counterpart of :class:`LatencyCollector` — it aggregates
    them into a run-level summary (mean seconds and overall fractions
    per category) that benchmark results embed.
    """

    def __init__(self, name: str = "attribution"):
        self.name = name
        self._totals: dict[str, float] = {}
        self._count = 0

    def record(self, attribution: dict[str, float] | None) -> None:
        """Add one query's attribution; ``None`` (tracing off) is a no-op."""
        if attribution is None:
            return
        self._count += 1
        for category, seconds in attribution.items():
            if seconds < 0:
                raise SimulationError(
                    f"negative attribution {seconds} for {category!r}"
                )
            self._totals[category] = self._totals.get(category, 0.0) + seconds

    def __len__(self) -> int:
        return self._count

    def totals(self) -> dict[str, float]:
        """Cumulative seconds per category across all recorded queries."""
        return dict(self._totals)

    def mean_seconds(self) -> dict[str, float]:
        if self._count == 0:
            raise SimulationError("no attributions recorded")
        return {k: v / self._count for k, v in self._totals.items()}

    def fractions(self) -> dict[str, float]:
        """Share of total attributed time per category (sums to 1)."""
        total = sum(self._totals.values())
        if total <= 0:
            raise SimulationError("no attributed time recorded")
        return {k: v / total for k, v in self._totals.items()}

    def summary(self) -> dict[str, float]:
        """LatencyCollector-style flat summary dict."""
        out: dict[str, float] = {"count": float(self._count)}
        if self._count:
            for category, seconds in sorted(self.mean_seconds().items()):
                out[f"mean_{category}"] = seconds
        total = sum(self._totals.values())
        if total > 0:
            for category, fraction in sorted(self.fractions().items()):
                out[f"fraction_{category}"] = fraction
        return out

"""Deterministic discrete-event simulation substrate.

The paper evaluated STASH on a 120-node physical cluster; this package
replaces that testbed with a SimPy-style discrete-event core (events,
generator-coroutine processes, simulated clocks), plus models for the
pieces of hardware whose costs drive the results: the network
(latency + bandwidth), node-local disks (seek + streaming throughput),
and bounded worker pools fed by per-node request queues.

Everything is deterministic given a seed: event ordering breaks ties by
schedule sequence number, so repeated runs produce identical traces.
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Event,
    Process,
    Simulator,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.network import Message, Network
from repro.sim.disk import Disk
from repro.sim.metrics import LatencyCollector, ThroughputTimeline, CounterSet

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Process",
    "Simulator",
    "Timeout",
    "Resource",
    "Store",
    "Message",
    "Network",
    "Disk",
    "LatencyCollector",
    "ThroughputTimeline",
    "CounterSet",
]

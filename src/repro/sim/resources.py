"""Simulated shared resources: FIFO stores and counting semaphores.

:class:`Store` is the request queue of every simulated node — its length
is exactly the "pending requests in its message queue" that triggers
hotspot detection (paper section VII-B-1).  :class:`Resource` models
bounded hardware (disk channels, worker slots).
"""

from __future__ import annotations

from collections import deque
from typing import Any

from repro.errors import SimulationError
from repro.sim.engine import Event, Simulator


class Store:
    """An unbounded FIFO queue with event-based ``get``.

    ``put`` is immediate (the queue is unbounded); ``get`` returns an
    event that fires as soon as an item is available, preserving FIFO
    order among waiters.
    """

    def __init__(self, sim: Simulator, name: str = "store"):
        self.sim = sim
        self.name = name
        self.items: deque[Any] = deque()
        self._waiters: deque[Event] = deque()
        #: Total number of items ever put (monitoring).
        self.total_puts = 0

    def __len__(self) -> int:
        """Number of queued (unclaimed) items — the pending-queue depth."""
        return len(self.items)

    def put(self, item: Any) -> None:
        self.total_puts += 1
        if self._waiters:
            self._waiters.popleft().succeed(item)
        else:
            self.items.append(item)

    def get(self) -> Event:
        event = Event(self.sim)
        if self.items:
            event.succeed(self.items.popleft())
        else:
            self._waiters.append(event)
        return event

    def clear(self) -> list[Any]:
        """Drop all queued items (a crashed node loses its queue).

        Waiting getters are left waiting — a crashed node's workers are
        not resumed, and live workers blocked on an empty queue simply
        keep blocking.  Returns the dropped items for accounting.
        """
        dropped = list(self.items)
        self.items.clear()
        return dropped

    @property
    def waiting_getters(self) -> int:
        return len(self._waiters)


class Resource:
    """A counting semaphore with FIFO waiters.

    Use via processes::

        yield resource.acquire()
        try:
            yield sim.timeout(work)
        finally:
            resource.release()
    """

    def __init__(self, sim: Simulator, capacity: int, name: str = "resource"):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: deque[Event] = deque()
        #: Cumulative (time-weighted) busy integral for utilization stats.
        self._busy_integral = 0.0
        self._last_change = sim.now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def _account(self) -> None:
        now = self.sim.now
        self._busy_integral += self._in_use * (now - self._last_change)
        self._last_change = now

    def acquire(self) -> Event:
        event = Event(self.sim)
        if self._in_use < self.capacity:
            self._account()
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        self._account()
        if self._waiters:
            # Hand the slot directly to the next waiter.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1

    def utilization(self) -> float:
        """Mean fraction of capacity busy since construction."""
        self._account()
        elapsed = self.sim.now if self.sim.now > 0 else 1.0
        return self._busy_integral / (self.capacity * elapsed)

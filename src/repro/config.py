"""Configuration dataclasses for every tunable in the STASH reproduction.

The paper reports results from a 120-node physical cluster processing the
~1.1 TB NOAA NAM dataset.  We reproduce the system on a deterministic
discrete-event simulator; every hardware constant the paper's testbed
implied (disk seek/throughput, NIC latency/bandwidth, per-record CPU cost)
is an explicit, documented knob here so experiments are reproducible and
the calibration is auditable (see DESIGN.md section 5).

All simulated durations are in **seconds of simulated time**; all sizes in
bytes unless stated otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any


@dataclass(frozen=True)
class CostModel:
    """Hardware cost constants driving the discrete-event simulation.

    Defaults are calibrated so that a cold country-sized query lands in
    the multi-second range and a fully cached one in the tens of
    milliseconds, matching the latency *ratios* of the paper's Fig. 6a.
    """

    #: One-way network latency for any message (seconds).
    network_latency: float = 2.0e-4
    #: Network bandwidth (bytes / second).
    network_bandwidth: float = 1.0e9
    #: Disk seek + request overhead per block read (seconds).
    disk_seek: float = 4.0e-3
    #: Sustained disk read throughput (bytes / second).
    disk_bandwidth: float = 1.5e8
    #: Multiplier applied to on-disk block sizes to emulate the paper's
    #: TB-scale dataset with a laptop-scale synthetic one.
    data_scale: float = 64.0
    #: CPU cost to scan + bin one raw observation record (seconds).
    scan_cost_per_record: float = 2.0e-7
    #: CPU cost to look up one cell in the in-memory graph (seconds).
    cell_lookup_cost: float = 2.0e-6
    #: CPU cost to merge one child cell into a parent aggregate (seconds).
    cell_merge_cost: float = 1.0e-6
    #: CPU cost to insert one cell into the graph (population path).
    cell_insert_cost: float = 4.0e-6
    #: Fixed per-request server-side overhead (deserialize, dispatch).
    request_overhead: float = 5.0e-4
    #: Approximate serialized size of one cell on the wire (bytes).
    cell_wire_size: int = 256
    #: Approximate serialized size of one raw record on disk (bytes).
    record_disk_size: int = 64

    def disk_read_time(self, nbytes: int) -> float:
        """Simulated seconds to read ``nbytes`` (pre-scaling) from disk."""
        return self.disk_seek + (nbytes * self.data_scale) / self.disk_bandwidth

    def network_time(self, nbytes: int) -> float:
        """Simulated seconds for a message of ``nbytes`` to traverse a link."""
        return self.network_latency + nbytes / self.network_bandwidth


@dataclass(frozen=True)
class FreshnessConfig:
    """Freshness scoring parameters (paper section V-C)."""

    #: Freshness added to every cell of a directly accessed region.
    f_inc: float = 1.0
    #: Fraction of ``f_inc`` dispersed to each cell in the immediate
    #: spatiotemporal neighborhood of an accessed region.
    dispersion_fraction: float = 0.35
    #: Exponential decay half-life of freshness (simulated seconds).
    half_life: float = 120.0
    #: Whether to disperse freshness across temporal neighbors too.
    disperse_temporal: bool = True


@dataclass(frozen=True)
class EvictionConfig:
    """Cell replacement thresholds (paper section V-C)."""

    #: Hard capacity: max cells resident in one node's local graph.
    max_cells: int = 200_000
    #: After a threshold breach, evict until at or below this fraction of
    #: ``max_cells`` (the paper's "safe limit").
    safe_fraction: float = 0.8


@dataclass(frozen=True)
class ReplicationConfig:
    """Dynamic clique replication parameters (paper section VII)."""

    #: A node deems itself hotspotted when its pending request queue
    #: exceeds this many entries (paper used 100).
    hotspot_queue_threshold: int = 100
    #: Clique depth: a clique is a cell plus descendants this many levels
    #: down (paper example: depth 2).
    clique_depth: int = 2
    #: Max number of cells replicated in one handoff (paper's ``N``).
    max_replicated_cells: int = 4_000
    #: Max cliques per handoff (paper's top ``K``).
    top_k_cliques: int = 8
    #: Cooldown between successive handoffs on one node (simulated s).
    cooldown: float = 30.0
    #: Probability that a query fully covered by a replica is rerouted
    #: to the helper node.
    reroute_probability: float = 0.5
    #: Guest-graph entries unused for this long are purged (simulated s).
    guest_ttl: float = 120.0
    #: Routing-table entries older than this are purged (simulated s).
    routing_ttl: float = 180.0
    #: Max random fallback probes around the antipode when the antipode
    #: node declines a distress request.
    max_candidate_probes: int = 8
    #: Capacity of a helper node's guest graph (cells).
    guest_capacity: int = 100_000


@dataclass(frozen=True)
class ClusterConfig:
    """Topology and concurrency of the simulated cluster."""

    #: Number of storage/STASH nodes (the paper used 120).
    num_nodes: int = 16
    #: Worker threads per node servicing the request queue (Z420: 8 cores).
    workers_per_node: int = 4
    #: Geohash prefix length used to partition data over the DHT
    #: (the paper partitioned on the first 2 characters).
    partition_precision: int = 2
    #: Geohash precision of individual storage blocks (disk read units).
    #: Galileo stores many finer-grained block files inside each node's
    #: partition; a node owns every block whose prefix falls in its
    #: partition.  Must be >= partition_precision.
    block_precision: int = 3
    #: Seed for any randomized placement decisions.
    seed: int = 7


@dataclass(frozen=True)
class ElasticConfig:
    """Simulated ElasticSearch baseline (paper section VIII-A)."""

    #: Shards per index (the paper used 600 over 120 data nodes).
    num_shards: int = 64
    #: Entries in the exact-match (request) cache per node.
    request_cache_entries: int = 1_024
    #: Page/block LRU cache capacity per node, in chunks.  Calibrated to
    #: the paper's regime (1.1 TB corpus vs 16 GB nodes): the cache holds
    #: only a sliver of any realistic query working set, so overlapping-
    #: but-not-identical queries mostly re-read disk.  Raise this to
    #: explore RAM-rich deployments.
    page_cache_blocks: int = 4
    #: Fraction of scan CPU saved when a filter bitset is cached
    #: (models the node query cache).
    filter_cache_speedup: float = 0.1


@dataclass(frozen=True)
class ObservabilityConfig:
    """Query tracing and time-series metric sampling (repro.obs).

    Both features are passive observers: enabling them never changes
    simulated results, only records them.  Tracing is off by default so
    the hot path stays allocation-free.
    """

    #: Record per-query span trees (enables latency attribution and the
    #: Chrome-trace exporter).
    trace: bool = False
    #: Sample registered gauges every this many simulated seconds
    #: (0 disables the periodic sampler).
    sample_interval: float = 0.0
    #: Hard cap on retained spans; beyond it new spans are dropped and
    #: the tracer is marked truncated.
    max_spans: int = 2_000_000
    #: Enable the query flight recorder: per-query trace contexts carried
    #: through every RPC/retry/redirect leg, mergeable latency histograms
    #: (per query class, per node, cluster-wide), and outcome/SLO
    #: accounting.  Passive like tracing: results are byte-identical
    #: either way.
    flight_recorder: bool = False
    #: Latency SLO targets as ``(query_class, percentile, seconds)``
    #: triples, e.g. ``(("pan", 95.0, 0.1), ("*", 99.0, 1.0))``.  Class
    #: ``"*"`` applies to every query.  Checked by the flight recorder;
    #: violations increment the ``slo_violations`` counter.
    slo_targets: tuple = ()


@dataclass(frozen=True)
class FaultConfig:
    """Fault injection and failure recovery (repro.faults).

    With ``enabled`` false and an empty ``schedule`` the fault layer is
    completely inert: no timers, no extra simulation events, and every
    RPC takes the exact pre-fault code path, so results are bit-identical
    to a build without the layer.
    """

    #: Master switch for timeout/retry/failover on RPCs.  Automatically
    #: considered on when a schedule is present (see :attr:`active`).
    enabled: bool = False
    #: Coordinator-side timeout for one leg of fetch_cells / populate /
    #: scan / clique RPCs (simulated seconds).
    rpc_timeout: float = 5.0
    #: Client-side timeout for a whole evaluate round trip.
    evaluate_timeout: float = 30.0
    #: Retries after the first attempt before declaring the peer dead.
    max_retries: int = 2
    #: Backoff before retry ``i`` is ``backoff_base * backoff_multiplier**i``.
    backoff_base: float = 0.5
    backoff_multiplier: float = 2.0
    #: Fraction of the nominal backoff randomized symmetrically around it
    #: (0.2 means each delay is drawn from +/-20% of nominal).  0 keeps
    #: the historical deterministic schedule; >0 decorrelates retries so
    #: many callers timing out on one dead node don't re-arrive in
    #: lockstep (a synchronized retry storm).
    backoff_jitter: float = 0.0
    #: Fault events to inject: a tuple of
    #: :class:`repro.faults.schedule.FaultEvent` (typed loosely so the
    #: config module does not import repro.faults).
    schedule: tuple = ()

    @property
    def active(self) -> bool:
        """Whether any fault machinery should run at all."""
        return self.enabled or bool(self.schedule)

    def backoff_delay(self, attempt: int, rng: Any = None) -> float:
        """Delay before retry ``attempt`` (0-based), with optional jitter.

        ``rng`` is a ``numpy.random.Generator``; it is only consumed when
        ``backoff_jitter`` > 0, so jitter-free configs draw nothing and
        stay bit-identical to the pre-jitter schedule.
        """
        delay = self.backoff_base * self.backoff_multiplier**attempt
        if self.backoff_jitter > 0.0 and rng is not None:
            spread = self.backoff_jitter * (2.0 * float(rng.random()) - 1.0)
            delay *= 1.0 + spread
        return delay


@dataclass(frozen=True)
class GossipConfig:
    """Epidemic membership: per-node liveness views (repro.faults.gossip).

    When ``enabled`` every participant (each storage node plus the
    client) keeps its own versioned view of the cluster and exchanges it
    via periodic push-gossip rounds over the simulated network.  With no
    faults injected all views agree with the static partition map, so
    routing — and therefore every simulated result — is byte-identical
    to the shared-membership baseline.
    """

    #: Master switch.  Off keeps the instantaneous shared
    #: ``ClusterMembership`` of PR 2.
    enabled: bool = False
    #: Seconds of simulated time between push-gossip rounds.
    interval: float = 0.25
    #: Peers each participant pushes its digest to per round.
    fanout: int = 2
    #: No heartbeat progress from a peer for this long -> SUSPECT.
    suspect_after: float = 1.0
    #: A SUSPECT peer with still no progress for this much longer is
    #: confirmed DEAD (total silence budget = suspect_after + dead_after).
    dead_after: float = 1.0
    #: Serialized bytes per view entry in a gossip digest.
    wire_size_per_entry: int = 32
    #: On a confirmed death, survivors promote / re-disperse guest
    #: replicas covering the dead node's range (anti-entropy repair).
    repair: bool = True
    #: On a rejoin, survivors stream the rejoining node's hot cells back
    #: (handoff) instead of letting it cold-start.
    handoff: bool = True
    #: Cap on cells one survivor promotes or ships per death/rejoin.
    max_repair_cells: int = 5_000
    #: NOT_OWNER re-route rounds per fetch leg before the coordinator
    #: forces the final recipient to serve (block placement is static, so
    #: a forced serve is always correct, merely non-local).
    max_redirects: int = 2


@dataclass(frozen=True)
class OverloadConfig:
    """Per-node admission control and circuit breaking.

    A bounded admission queue sheds the lowest-priority work first
    (background population, then replication/cache fetches); evaluate
    requests are never shed.  Sustained shedding trips a per-node circuit
    breaker that converts overload into explicit degraded
    (completeness < 1) answers instead of cascading timeouts.
    """

    #: Master switch; off leaves dispatch untouched.
    enabled: bool = False
    #: Pending-request depth above which priority-0 work (populate,
    #: replicate, distress) is shed; priority-1 work (fetch_cells, scan)
    #: is shed above twice this depth.
    queue_limit: int = 64
    #: Sheds within ``breaker_window`` that trip the breaker open.
    breaker_sheds: int = 8
    #: Sliding window for counting sheds (simulated seconds).
    breaker_window: float = 1.0
    #: How long the breaker stays open once tripped (simulated seconds).
    breaker_cooldown: float = 2.0


@dataclass(frozen=True)
class ServeConfig:
    """Socket serving (``repro serve``): the asyncio transport backend.

    These knobs only affect the real-socket deployment; the simulator
    twin ignores them, which is what makes the sim-vs-socket equivalence
    check meaningful (same logical config, different runtime).
    """

    #: Interface the node servers bind (port is always OS-assigned).
    host: str = "127.0.0.1"
    #: Wall-clock seconds per simulated second for engine timers.  The
    #: default compresses simulated-time timeouts (tuned for the
    #: discrete-event world, e.g. a 5 s RPC timeout) onto loop timers
    #: without making daemon work spin hot.
    time_scale: float = 0.05
    #: Wall-clock seconds the driver waits for one quiesce barrier
    #: (all nodes idle) before giving up on the run.
    quiesce_timeout: float = 30.0
    #: Wall-clock seconds a child node server may take to bind + report
    #: ready before the launcher declares the run stuck.
    startup_timeout: float = 30.0
    #: Hard wall-clock budget for one whole ``repro serve`` run; the
    #: launcher kills the cluster when it is exceeded (CI guard).
    wall_clock_budget: float = 300.0
    #: HTTP facade (``repro serve --http`` / repro.serve.http).  The
    #: facade binds ``http_host``; port 0 asks the OS for a free port.
    http_host: str = "127.0.0.1"
    http_port: int = 0
    #: ``/search`` page size when the request names none, and the hard
    #: cap a request may ask for (limits > cap are a 400, not a clamp —
    #: silent clamping hides client bugs).
    http_default_limit: int = 100
    http_max_limit: int = 1000
    #: Entries in the facade's complete-answer response cache (LRU).
    #: Degraded answers (completeness < 1) are never cached, mirroring
    #: the client-side rule in docs/fault-model.md.
    http_cache_entries: int = 256


@dataclass(frozen=True)
class StashConfig:
    """Top-level configuration bundle for a STASH deployment."""

    cost: CostModel = field(default_factory=CostModel)
    freshness: FreshnessConfig = field(default_factory=FreshnessConfig)
    eviction: EvictionConfig = field(default_factory=EvictionConfig)
    replication: ReplicationConfig = field(default_factory=ReplicationConfig)
    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    elastic: ElasticConfig = field(default_factory=ElasticConfig)
    observability: ObservabilityConfig = field(default_factory=ObservabilityConfig)
    faults: FaultConfig = field(default_factory=FaultConfig)
    gossip: GossipConfig = field(default_factory=GossipConfig)
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    serve: ServeConfig = field(default_factory=ServeConfig)
    #: Enable the dynamic clique replication subsystem (RQ-3).
    enable_replication: bool = True
    #: Enable roll-up recomputation of missing coarse cells from cached
    #: finer cells (paper V-B).  Off forces disk for every cache miss.
    enable_rollup: bool = True
    #: Enable predictive prefetching (paper future-work extension).
    enable_prefetch: bool = False
    #: Use the columnar (integer bin-id + SummaryFrame) scan kernel.
    #: Off takes the frozen scalar string-label path — the equivalence
    #: baseline; both produce bitwise-identical summaries.
    columnar_scan: bool = True

    def with_(self, **kwargs: Any) -> "StashConfig":
        """Return a copy with top-level fields replaced."""
        return replace(self, **kwargs)


DEFAULT_CONFIG = StashConfig()

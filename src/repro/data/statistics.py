"""Mergeable summary statistics (the contents of a STASH Cell).

Each attribute's summary is (count, sum, sum of squares, min, max); these
form a commutative monoid under :meth:`AttributeSummary.merge`, which is
what lets STASH:

* compute a parent cell from its children without touching raw data
  (roll-up, paper section V-B), and
* answer any aggregation query (count/mean/min/max/std) from cached cells.

Vectorized constructors aggregate whole observation batches with
``np.bincount``-style grouped reductions rather than per-record loops.
"""

from __future__ import annotations

import math
from typing import NamedTuple

import numpy as np

from repro.errors import StatisticsError


class AttributeSummary(NamedTuple):
    """Summary statistics of one attribute over one spatiotemporal bin.

    A NamedTuple rather than a dataclass: immutable, and cheap enough to
    construct that the grouped-aggregation hot path (four of these per
    non-empty cell) stays object-bound rather than interpreter-bound.
    """

    count: int
    total: float
    total_sq: float
    minimum: float
    maximum: float

    # -- constructors -----------------------------------------------------

    @staticmethod
    def empty() -> "AttributeSummary":
        """The monoid identity."""
        return AttributeSummary(0, 0.0, 0.0, math.inf, -math.inf)

    @staticmethod
    def from_values(values: np.ndarray) -> "AttributeSummary":
        """Summary of a 1-D array of raw values."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return AttributeSummary.empty()
        return AttributeSummary(
            count=int(values.size),
            total=float(values.sum()),
            total_sq=float(np.square(values).sum()),
            minimum=float(values.min()),
            maximum=float(values.max()),
        )

    # -- monoid ------------------------------------------------------------

    def merge(self, other: "AttributeSummary") -> "AttributeSummary":
        """Combine two summaries of disjoint data (associative, commutative)."""
        return AttributeSummary(
            count=self.count + other.count,
            total=self.total + other.total,
            total_sq=self.total_sq + other.total_sq,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
        )

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    # -- derived statistics ---------------------------------------------------

    @property
    def mean(self) -> float:
        if self.count == 0:
            raise StatisticsError("mean of empty summary")
        return self.total / self.count

    @property
    def variance(self) -> float:
        """Population variance, clamped at 0 against fp cancellation."""
        if self.count == 0:
            raise StatisticsError("variance of empty summary")
        mean = self.mean
        return max(0.0, self.total_sq / self.count - mean * mean)

    @property
    def std(self) -> float:
        return math.sqrt(self.variance)

    def approx_equal(self, other: "AttributeSummary", rel: float = 1e-9) -> bool:
        """Floating-point-tolerant equality (counts/extrema exact)."""
        if self.count != other.count:
            return False
        if self.count == 0:
            return other.count == 0
        return (
            math.isclose(self.total, other.total, rel_tol=rel, abs_tol=1e-9)
            and math.isclose(self.total_sq, other.total_sq, rel_tol=rel, abs_tol=1e-9)
            and self.minimum == other.minimum
            and self.maximum == other.maximum
        )


class SummaryVector:
    """Per-attribute summaries for one spatiotemporal bin.

    A thin immutable mapping ``attribute name -> AttributeSummary`` with a
    merge operation over matching attribute sets.  All attribute summaries
    in one vector share the same observation count.
    """

    __slots__ = ("_summaries",)

    def __init__(self, summaries: dict[str, AttributeSummary]):
        if not summaries:
            raise StatisticsError("SummaryVector needs at least one attribute")
        counts = {s.count for s in summaries.values()}
        if len(counts) != 1:
            raise StatisticsError(
                f"inconsistent counts across attributes: {sorted(counts)}"
            )
        self._summaries = dict(summaries)

    @classmethod
    def _trusted(cls, summaries: dict[str, AttributeSummary]) -> "SummaryVector":
        """Validation-free constructor for hot aggregation paths.

        Callers guarantee a non-empty dict with consistent counts (true
        by construction in :func:`grouped_summaries`, which derives every
        attribute's count from the same segment boundaries).
        """
        self = cls.__new__(cls)
        self._summaries = summaries
        return self

    # -- constructors --------------------------------------------------------

    @staticmethod
    def empty(attributes: list[str]) -> "SummaryVector":
        return SummaryVector({a: AttributeSummary.empty() for a in attributes})

    @staticmethod
    def from_arrays(arrays: dict[str, np.ndarray]) -> "SummaryVector":
        return SummaryVector(
            {name: AttributeSummary.from_values(v) for name, v in arrays.items()}
        )

    # -- mapping API -----------------------------------------------------------

    @property
    def attributes(self) -> list[str]:
        return sorted(self._summaries)

    @property
    def count(self) -> int:
        """Observation count (shared by all attributes)."""
        return next(iter(self._summaries.values())).count

    @property
    def is_empty(self) -> bool:
        return self.count == 0

    def __getitem__(self, attribute: str) -> AttributeSummary:
        try:
            return self._summaries[attribute]
        except KeyError:
            raise StatisticsError(f"unknown attribute {attribute!r}") from None

    def __contains__(self, attribute: str) -> bool:
        return attribute in self._summaries

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SummaryVector):
            return NotImplemented
        return self._summaries == other._summaries

    def __repr__(self) -> str:
        return f"SummaryVector(count={self.count}, attrs={self.attributes})"

    # -- monoid ------------------------------------------------------------

    def merge(self, other: "SummaryVector") -> "SummaryVector":
        """Merge two vectors of disjoint data over the same attributes."""
        if set(self._summaries) != set(other._summaries):
            raise StatisticsError(
                f"attribute mismatch: {self.attributes} vs {other.attributes}"
            )
        return SummaryVector(
            {a: s.merge(other._summaries[a]) for a, s in self._summaries.items()}
        )

    @staticmethod
    def merge_all(vectors: list["SummaryVector"]) -> "SummaryVector":
        if not vectors:
            raise StatisticsError("merge_all of no vectors")
        out = vectors[0]
        for vec in vectors[1:]:
            out = out.merge(vec)
        return out

    def approx_equal(self, other: "SummaryVector", rel: float = 1e-9) -> bool:
        if set(self._summaries) != set(other._summaries):
            return False
        return all(
            s.approx_equal(other._summaries[a], rel=rel)
            for a, s in self._summaries.items()
        )

    def project(self, attributes: list[str] | tuple[str, ...]) -> "SummaryVector":
        """Restrict to a subset of attributes (client-requested slice).

        Cells always cache *every* attribute so they stay reusable by any
        later query; attribute selection is applied to responses only.
        """
        missing = [a for a in attributes if a not in self._summaries]
        if missing:
            raise StatisticsError(f"unknown attributes {missing}")
        if not attributes:
            raise StatisticsError("projection needs at least one attribute")
        return SummaryVector({a: self._summaries[a] for a in attributes})

    # -- rendering ------------------------------------------------------------

    def to_json_dict(self) -> dict[str, dict[str, float]]:
        """JSON-serializable form consumed by the front-end renderer."""
        out: dict[str, dict[str, float]] = {}
        for name, s in self._summaries.items():
            if s.is_empty:
                out[name] = {"count": 0}
            else:
                out[name] = {
                    "count": s.count,
                    "min": s.minimum,
                    "max": s.maximum,
                    "mean": s.mean,
                    "std": s.std,
                }
        return out


class SummaryFrame:
    """Columnar grouped summaries: many bins' statistics as parallel arrays.

    The columnar counterpart of ``dict[bin, SummaryVector]``: ``ids``
    holds the sorted distinct bin ids (packed uint64 from
    :mod:`repro.geo.binning`, or composite string labels on the fallback
    path), ``counts`` the per-bin observation counts, and ``columns``
    maps each attribute name to its ``(sums, sumsqs, mins, maxs)``
    float64 arrays — all aligned with ``ids``.

    Frames are the unit the scan pipeline produces and merges: each
    block scan yields one frame, frames merge column-wise (concatenate +
    one stable regroup), and per-bin :class:`SummaryVector` objects are
    materialized lazily only at the query/response boundary.  Merging
    accumulates partial sums left-to-right in frame order, exactly like
    the scalar per-cell merge chain, so columnar results are bitwise
    identical to the scalar path's.
    """

    __slots__ = ("ids", "counts", "columns")

    def __init__(
        self,
        ids: np.ndarray,
        counts: np.ndarray,
        columns: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]],
    ):
        self.ids = ids
        self.counts = counts
        self.columns = columns

    def __len__(self) -> int:
        return self.ids.size

    @property
    def attributes(self) -> list[str]:
        return sorted(self.columns)

    def __repr__(self) -> str:
        return f"SummaryFrame(bins={len(self)}, attrs={self.attributes})"

    # -- constructors --------------------------------------------------------

    @staticmethod
    def from_groups(
        group_keys: np.ndarray, arrays: dict[str, np.ndarray]
    ) -> "SummaryFrame":
        """Group raw values by key into a frame, fully vectorized.

        ``group_keys`` is an array of per-record bin ids (uint64 or
        string); ``arrays`` maps attribute names to same-length value
        arrays.  One stable argsort plus ``np.*.reduceat`` segment
        reductions per attribute — no per-record Python loop, and no
        per-bin object construction.
        """
        if not arrays:
            raise StatisticsError("grouped summaries need at least one attribute")
        group_keys = np.asarray(group_keys)
        n = group_keys.size
        for name, values in arrays.items():
            if np.asarray(values).shape != (n,):
                raise StatisticsError(
                    f"attribute {name!r} length mismatch with group keys"
                )
        if n == 0:
            return SummaryFrame(
                ids=group_keys,
                counts=np.empty(0, dtype=np.int64),
                columns={
                    name: tuple(np.empty(0, dtype=np.float64) for _ in range(4))
                    for name in arrays
                },
            )
        order = np.argsort(group_keys, kind="stable")
        sorted_keys = group_keys[order]
        # Segment boundaries: first index of each distinct key.
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_keys[1:] != sorted_keys[:-1]
        starts = np.flatnonzero(boundary)
        uniq = sorted_keys[starts]
        counts = np.diff(np.append(starts, n))

        columns: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
        for name, values in arrays.items():
            v = np.asarray(values, dtype=np.float64)[order]
            sums = np.add.reduceat(v, starts)
            sq = np.add.reduceat(np.square(v), starts)
            mins = np.minimum.reduceat(v, starts)
            maxs = np.maximum.reduceat(v, starts)
            columns[name] = (sums, sq, mins, maxs)
        return SummaryFrame(ids=uniq, counts=counts, columns=columns)

    # -- monoid ------------------------------------------------------------

    def merge(self, other: "SummaryFrame") -> "SummaryFrame":
        """Column-wise merge of two frames over the same attributes."""
        return SummaryFrame.merge_all([self, other])

    @staticmethod
    def merge_all(frames: list["SummaryFrame"]) -> "SummaryFrame":
        """Merge frames in list order (left-to-right partial summation).

        Concatenates every column and regroups with one stable sort:
        rows with equal ids stay in frame order, and ``reduceat``
        accumulates them left to right — the same float summation order
        as chaining scalar ``SummaryVector.merge`` calls.
        """
        if not frames:
            raise StatisticsError("merge_all of no frames")
        if len(frames) == 1:
            return frames[0]
        names = set(frames[0].columns)
        for frame in frames[1:]:
            if set(frame.columns) != names:
                raise StatisticsError(
                    f"attribute mismatch: {frames[0].attributes} "
                    f"vs {frame.attributes}"
                )
        ids = np.concatenate([f.ids for f in frames])
        n = ids.size
        order = np.argsort(ids, kind="stable")
        sorted_ids = ids[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        boundary[1:] = sorted_ids[1:] != sorted_ids[:-1]
        starts = np.flatnonzero(boundary)
        counts = np.add.reduceat(
            np.concatenate([f.counts for f in frames])[order], starts
        )
        columns: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
        for name in frames[0].columns:
            parts = [f.columns[name] for f in frames]
            sums = np.add.reduceat(
                np.concatenate([p[0] for p in parts])[order], starts
            )
            sq = np.add.reduceat(
                np.concatenate([p[1] for p in parts])[order], starts
            )
            mins = np.minimum.reduceat(
                np.concatenate([p[2] for p in parts])[order], starts
            )
            maxs = np.maximum.reduceat(
                np.concatenate([p[3] for p in parts])[order], starts
            )
            columns[name] = (sums, sq, mins, maxs)
        return SummaryFrame(ids=sorted_ids[starts], counts=counts, columns=columns)

    # -- materialization -----------------------------------------------------

    def vectors(self) -> list[SummaryVector]:
        """Materialize one :class:`SummaryVector` per bin, aligned with ``ids``.

        This is the lazy boundary: frames stay columnar through scan and
        merge; per-bin objects exist only once a response needs them.
        """
        # Convert the columns to Python lists once — per-element ndarray
        # indexing in the loop below would dominate otherwise.
        counts_list = self.counts.tolist()
        columns = {
            name: (c[0].tolist(), c[1].tolist(), c[2].tolist(), c[3].tolist())
            for name, c in self.columns.items()
        }
        out: list[SummaryVector] = []
        for i in range(len(counts_list)):
            summaries = {
                name: AttributeSummary(
                    count=counts_list[i],
                    total=cols[0][i],
                    total_sq=cols[1][i],
                    minimum=cols[2][i],
                    maximum=cols[3][i],
                )
                for name, cols in columns.items()
            }
            out.append(SummaryVector._trusted(summaries))
        return out

    def materialize(self) -> dict:
        """``{bin id: SummaryVector}`` for every bin in the frame."""
        return dict(zip(self.ids.tolist(), self.vectors()))


def grouped_summaries(
    group_keys: np.ndarray, arrays: dict[str, np.ndarray]
) -> dict[str, SummaryVector]:
    """Group raw values by key and summarize each group, vectorized.

    ``group_keys`` is an array of per-record bin labels (uint64 bin ids
    or strings); ``arrays`` maps attribute names to same-length value
    arrays.  Returns ``{key: SummaryVector}`` for each distinct key.

    Thin wrapper over the columnar kernel: builds a
    :class:`SummaryFrame` and materializes it immediately.  Hot paths
    that merge scans (``scan_blocks``) keep the frame columnar instead
    and materialize once at the end.  ``grouped_summaries_scalar`` is
    the frozen pre-columnar implementation kept as the equivalence
    baseline.
    """
    return SummaryFrame.from_groups(group_keys, arrays).materialize()


def grouped_summaries_scalar(
    group_keys: np.ndarray, arrays: dict[str, np.ndarray]
) -> dict[str, SummaryVector]:
    """Pre-columnar ``grouped_summaries``, frozen as the equivalence baseline.

    Kept verbatim (like ``rank_victims``'s scalar twin) so tests and the
    bench kernel can pin the columnar pipeline against the original
    semantics.  Do not optimize this function.
    """
    group_keys = np.asarray(group_keys)
    n = group_keys.size
    for name, values in arrays.items():
        if np.asarray(values).shape != (n,):
            raise StatisticsError(
                f"attribute {name!r} length mismatch with group keys"
            )
    if n == 0:
        return {}
    order = np.argsort(group_keys, kind="stable")
    sorted_keys = group_keys[order]
    # Segment boundaries: first index of each distinct key.
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_keys[1:] != sorted_keys[:-1]
    starts = np.flatnonzero(boundary)
    uniq = sorted_keys[starts]
    counts = np.diff(np.append(starts, n))

    per_attr: dict[str, tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]] = {}
    for name, values in arrays.items():
        v = np.asarray(values, dtype=np.float64)[order]
        sums = np.add.reduceat(v, starts)
        sq = np.add.reduceat(np.square(v), starts)
        mins = np.minimum.reduceat(v, starts)
        maxs = np.maximum.reduceat(v, starts)
        per_attr[name] = (sums, sq, mins, maxs)

    # Convert the per-attribute columns to Python lists once — per-element
    # ndarray indexing in the loop below would dominate otherwise.
    counts_list = counts.tolist()
    columns = {
        name: (vals[0].tolist(), vals[1].tolist(), vals[2].tolist(), vals[3].tolist())
        for name, vals in per_attr.items()
    }
    labels = uniq.tolist()
    out: dict[str, SummaryVector] = {}
    for i, key in enumerate(labels):
        summaries = {
            name: AttributeSummary(
                count=counts_list[i],
                total=cols[0][i],
                total_sq=cols[1][i],
                minimum=cols[2][i],
                maximum=cols[3][i],
            )
            for name, cols in columns.items()
        }
        out[key] = SummaryVector._trusted(summaries)
    return out

"""Data layer: observations, mergeable summary statistics, synthetic NAM data.

The paper's cells hold "aggregated summary statistics" per attribute; this
package defines those statistics as a commutative monoid so that parent
cells can be recomputed exactly from any complete partition of children
(the basis of STASH's collective caching and roll-up evaluation).
"""

from repro.data.statistics import AttributeSummary, SummaryVector
from repro.data.observation import ObservationBatch, OBSERVATION_ATTRIBUTES
from repro.data.generator import SyntheticNAMGenerator, DatasetSpec
from repro.data.block import Block, BlockId, partition_into_blocks

__all__ = [
    "AttributeSummary",
    "SummaryVector",
    "ObservationBatch",
    "OBSERVATION_ATTRIBUTES",
    "SyntheticNAMGenerator",
    "DatasetSpec",
    "Block",
    "BlockId",
    "partition_into_blocks",
]

"""Synthetic NAM-like dataset generator.

The paper evaluates on the NOAA North American Mesoscale (NAM) Forecast
System output for 2013 (~1.1 TB): gridded atmospheric observations taken
several times per day with attributes such as surface temperature,
relative humidity, snow and precipitation.

We cannot ship that dataset, so this module generates a seeded synthetic
equivalent: observations on a jittered grid over a configurable domain,
sampled at fixed times-of-day across a date range, with physically shaped
attributes (latitudinal + seasonal + diurnal temperature structure,
humidity anti-correlated with temperature, occasional precipitation,
snow only below freezing).  The *system under test* only depends on
record shape, volume, and spatiotemporal distribution, all of which this
preserves (DESIGN.md section 2).
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

import numpy as np

from repro.data.observation import OBSERVATION_ATTRIBUTES, ObservationBatch
from repro.errors import WorkloadError
from repro.geo.bbox import BoundingBox


def _epoch(year: int, month: int, day: int, hour: int = 0) -> float:
    return _dt.datetime(year, month, day, hour, tzinfo=_dt.timezone.utc).timestamp()


#: Approximate NAM spatial coverage (North America).
NAM_DOMAIN = BoundingBox(south=12.0, north=62.0, west=-152.0, east=-49.0)


@dataclass(frozen=True)
class DatasetSpec:
    """Shape of a synthetic dataset.

    Parameters
    ----------
    num_records:
        Total observation count.
    domain:
        Spatial coverage of the observations.
    start_day, num_days:
        Temporal coverage: ``num_days`` consecutive days from
        ``start_day`` (year, month, day).
    observations_per_day:
        Distinct sampling hours per day (NAM publishes several runs/day).
    seed:
        RNG seed; identical specs generate identical datasets.
    """

    num_records: int = 100_000
    domain: BoundingBox = field(default_factory=lambda: NAM_DOMAIN)
    start_day: tuple[int, int, int] = (2013, 1, 1)
    num_days: int = 365
    observations_per_day: int = 4
    seed: int = 42

    def __post_init__(self) -> None:
        if self.num_records <= 0:
            raise WorkloadError("num_records must be positive")
        if self.num_days <= 0:
            raise WorkloadError("num_days must be positive")
        if not 1 <= self.observations_per_day <= 24:
            raise WorkloadError("observations_per_day must be in [1, 24]")

    @property
    def time_start(self) -> float:
        return _epoch(*self.start_day)

    @property
    def time_end(self) -> float:
        return self.time_start + self.num_days * 86_400.0


class SyntheticNAMGenerator:
    """Seeded generator of NAM-like observation batches."""

    def __init__(self, spec: DatasetSpec):
        self.spec = spec
        self._rng = np.random.default_rng(spec.seed)

    def generate(self) -> ObservationBatch:
        """Generate the full dataset as one batch."""
        return self._make(self.spec.num_records)

    def generate_chunks(self, chunk_size: int) -> list[ObservationBatch]:
        """Generate the dataset as a list of batches of ``chunk_size``."""
        if chunk_size <= 0:
            raise WorkloadError("chunk_size must be positive")
        remaining = self.spec.num_records
        out = []
        while remaining > 0:
            n = min(chunk_size, remaining)
            out.append(self._make(n))
            remaining -= n
        return out

    # -- internals ------------------------------------------------------------

    def _make(self, n: int) -> ObservationBatch:
        spec, rng = self.spec, self._rng
        box = spec.domain
        lats = rng.uniform(box.south, box.north, n)
        lons = rng.uniform(box.west, box.east, n)

        day_idx = rng.integers(0, spec.num_days, n)
        hours = (
            rng.integers(0, spec.observations_per_day, n)
            * (24 // spec.observations_per_day)
        )
        epochs = (
            spec.time_start
            + day_idx.astype(np.float64) * 86_400.0
            + hours.astype(np.float64) * 3_600.0
            # jitter within the hour so HOUR-resolution bins stay stable
            + rng.uniform(0.0, 3_599.0, n)
        )

        day_of_year = day_idx % 365
        seasonal = -12.0 * np.cos(2.0 * np.pi * (day_of_year - 15) / 365.0)
        diurnal = 6.0 * np.sin(2.0 * np.pi * (hours - 9) / 24.0)
        lat_gradient = 30.0 - 0.8 * (lats - box.south)
        temperature = lat_gradient + seasonal + diurnal + rng.normal(0.0, 3.0, n)

        humidity = np.clip(
            85.0 - 0.9 * (temperature - 5.0) + rng.normal(0.0, 12.0, n), 0.0, 100.0
        )
        raining = rng.random(n) < 0.18
        precipitation = np.where(raining, rng.exponential(4.0, n), 0.0)
        freezing = temperature < 0.0
        snow_depth = np.where(
            freezing, np.abs(rng.normal(0.0, 8.0, n)) * (-temperature) / 10.0, 0.0
        )

        return ObservationBatch(
            lats=lats,
            lons=lons,
            epochs=epochs,
            attributes={
                "temperature": temperature,
                "humidity": humidity,
                "precipitation": precipitation,
                "snow_depth": snow_depth,
            },
        )


def small_test_dataset(
    num_records: int = 5_000, seed: int = 7, num_days: int = 28
) -> ObservationBatch:
    """Convenience dataset for unit tests: February 2013, NAM domain."""
    spec = DatasetSpec(
        num_records=num_records,
        start_day=(2013, 2, 1),
        num_days=num_days,
        seed=seed,
    )
    batch = SyntheticNAMGenerator(spec).generate()
    assert set(batch.attributes) == set(OBSERVATION_ATTRIBUTES)
    return batch


def conformance_dataset(
    num_records: int = 6_000, seed: int = 0, num_days: int = 3
) -> ObservationBatch:
    """The seeded dataset the oracle conformance campaign replays against.

    Deliberately small (the brute-force oracle re-derives every answer
    record-by-record) but multi-day and domain-wide, so campaigns cover
    temporal bin edges, multi-block cells, and every node's partition.
    The default seed matches ``repro conform --seed 0``; changing the
    shape here changes the canonical campaign, so treat it like a test
    fixture, not a tunable.
    """
    spec = DatasetSpec(
        num_records=num_records,
        start_day=(2013, 2, 1),
        num_days=num_days,
        seed=seed,
    )
    return SyntheticNAMGenerator(spec).generate()

"""Storage blocks: the on-disk unit of the Galileo-like backend.

Galileo partitions data into blocks by geohash so geospatially proximate
points are colocated; "the granularity of the coverage of a data block is
determined by the length of geohash code managed by the nodes" (paper
section VI-C).  We partition on (geohash prefix, calendar day): each block
holds every observation whose position falls in one coarse geohash cell on
one day.  The paper's deployment used 2-character prefixes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.observation import ObservationBatch
from repro.errors import StorageError
from repro.geo.binning import decode_bin_ids, supports_bin_ids
from repro.geo.geohash import bbox as geohash_bbox, encode_many
from repro.geo.temporal import TemporalResolution, TimeKey, bin_epochs


@dataclass(frozen=True, slots=True, order=True)
class BlockId:
    """Identity of one storage block: coarse geohash cell + day."""

    geohash: str
    day: str  # TimeKey string form, e.g. '2013-02-02'

    def __str__(self) -> str:
        return f"{self.geohash}@{self.day}"

    @property
    def time_key(self) -> TimeKey:
        return TimeKey.parse(self.day)


@dataclass(frozen=True)
class Block:
    """One immutable storage block."""

    block_id: BlockId
    batch: ObservationBatch

    def __len__(self) -> int:
        return len(self.batch)

    @property
    def nbytes(self) -> int:
        """Raw byte size driving simulated disk-read cost."""
        return self.batch.nbytes

    def validate(self) -> None:
        """Check every record belongs to this block's cell and day.

        Used by tests and by the backend's ingest assertions; O(n) numpy
        work, never called on the query path.
        """
        if len(self.batch) == 0:
            return
        box = geohash_bbox(self.block_id.geohash)
        if not (
            bool((self.batch.lats >= box.south).all())
            and bool((self.batch.lats < box.north).all())
            and bool((self.batch.lons >= box.west).all())
            and bool((self.batch.lons < box.east).all())
        ):
            raise StorageError(f"records outside cell in block {self.block_id}")
        day_range = self.block_id.time_key.epoch_range()
        if not (
            bool((self.batch.epochs >= day_range.start).all())
            and bool((self.batch.epochs < day_range.end).all())
        ):
            raise StorageError(f"records outside day in block {self.block_id}")


def partition_into_blocks(
    batch: ObservationBatch, partition_precision: int
) -> dict[BlockId, Block]:
    """Split a batch into (geohash prefix, day) blocks, vectorized.

    One grouped pass: compute per-record partition bin ids (packed
    uint64, see :mod:`repro.geo.binning`), sort once, and slice
    contiguous runs into per-block sub-batches.  Bin ids sort exactly
    like the composite ``'<prefix>@<day>'`` string labels (ASCII-
    ascending alphabet, chronological day codes), so block identity,
    dict ordering, and per-block record order are unchanged from the
    string path — which remains as the fallback for (precision, DAY)
    pairs the packed scheme cannot represent.
    """
    if partition_precision < 1:
        raise StorageError("partition_precision must be >= 1")
    n = len(batch)
    if n == 0:
        return {}
    if supports_bin_ids(partition_precision, TemporalResolution.DAY):
        labels = batch.bin_ids(partition_precision, TemporalResolution.DAY)
    else:
        prefixes = encode_many(batch.lats, batch.lons, partition_precision)
        days = bin_epochs(batch.epochs, TemporalResolution.DAY)
        labels = np.char.add(np.char.add(prefixes, "@"), days)

    order = np.argsort(labels, kind="stable")
    sorted_labels = labels[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    boundary[1:] = sorted_labels[1:] != sorted_labels[:-1]
    starts = np.flatnonzero(boundary)
    ends = np.append(starts[1:], n)

    if labels.dtype == np.uint64:
        pairs = decode_bin_ids(
            sorted_labels[starts], partition_precision, TemporalResolution.DAY
        )
        block_ids = [BlockId(geohash=gh, day=str(key)) for gh, key in pairs]
    else:
        block_ids = []
        for start in starts:
            geohash, day = str(sorted_labels[start]).split("@", 1)
            block_ids.append(BlockId(geohash=geohash, day=day))

    out: dict[BlockId, Block] = {}
    for block_id, start, end in zip(block_ids, starts, ends):
        out[block_id] = Block(block_id=block_id, batch=batch.select(order[start:end]))
    return out

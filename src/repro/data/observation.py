"""Observation batches: structure-of-arrays record storage.

Each observation has (lat, lon, epoch timestamp) plus float attributes —
exactly the record shape the paper's NAM dataset provides (surface
temperature, relative humidity, snow, precipitation).  Batches are
immutable numpy SoA containers; every filter/bin operation is vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import StatisticsError
from repro.geo.bbox import BoundingBox
from repro.geo.binning import bin_ids as _bin_ids
from repro.geo.geohash import encode_many
from repro.geo.temporal import TemporalResolution, TimeRange, bin_epochs

#: The NAM-like attributes every synthetic observation carries.
OBSERVATION_ATTRIBUTES = (
    "temperature",
    "humidity",
    "precipitation",
    "snow_depth",
)


@dataclass(frozen=True)
class ObservationBatch:
    """An immutable batch of observations in structure-of-arrays form."""

    lats: np.ndarray
    lons: np.ndarray
    epochs: np.ndarray
    attributes: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = self.lats.shape
        if self.lons.shape != n or self.epochs.shape != n:
            raise StatisticsError("coordinate array shapes differ")
        for name, values in self.attributes.items():
            if values.shape != n:
                raise StatisticsError(f"attribute {name!r} shape mismatch")
        for arr in (self.lats, self.lons, self.epochs, *self.attributes.values()):
            arr.setflags(write=False)

    def __len__(self) -> int:
        return int(self.lats.size)

    @property
    def attribute_names(self) -> list[str]:
        return sorted(self.attributes)

    @property
    def nbytes(self) -> int:
        """In-memory footprint of all arrays."""
        arrays = (self.lats, self.lons, self.epochs, *self.attributes.values())
        return int(sum(a.nbytes for a in arrays))

    @staticmethod
    def empty(attribute_names: tuple[str, ...] = OBSERVATION_ATTRIBUTES) -> "ObservationBatch":
        z = np.array([], dtype=np.float64)
        return ObservationBatch(
            z, z.copy(), z.copy(), {a: np.array([], dtype=np.float64) for a in attribute_names}
        )

    # -- filtering (all vectorized, views/masks only) ----------------------

    def select(self, mask: np.ndarray) -> "ObservationBatch":
        """Subset by boolean mask or index array."""
        return ObservationBatch(
            self.lats[mask],
            self.lons[mask],
            self.epochs[mask],
            {name: v[mask] for name, v in self.attributes.items()},
        )

    def filter_bbox(self, box: BoundingBox) -> "ObservationBatch":
        """Observations inside the closed-open rectangle."""
        mask = (
            (self.lats >= box.south)
            & (self.lats < box.north)
            & (self.lons >= box.west)
            & (self.lons < box.east)
        )
        return self.select(mask)

    def filter_time(self, time_range: TimeRange) -> "ObservationBatch":
        """Observations inside the half-open time range."""
        mask = (self.epochs >= time_range.start) & (self.epochs < time_range.end)
        return self.select(mask)

    def concat(self, other: "ObservationBatch") -> "ObservationBatch":
        if set(self.attributes) != set(other.attributes):
            raise StatisticsError("cannot concat batches with different attributes")
        return ObservationBatch(
            np.concatenate([self.lats, other.lats]),
            np.concatenate([self.lons, other.lons]),
            np.concatenate([self.epochs, other.epochs]),
            {
                name: np.concatenate([v, other.attributes[name]])
                for name, v in self.attributes.items()
            },
        )

    @staticmethod
    def concat_all(batches: list["ObservationBatch"]) -> "ObservationBatch":
        if not batches:
            return ObservationBatch.empty()
        out = batches[0]
        for batch in batches[1:]:
            out = out.concat(batch)
        return out

    # -- binning ------------------------------------------------------------

    def bin_keys(
        self, spatial_precision: int, temporal_resolution: TemporalResolution
    ) -> np.ndarray:
        """Per-record composite bin label '<geohash>@<timekey>'.

        The composite string is the flat form of the paper's Cell index
        key (spatiotemporal label); grouping records by it yields exactly
        one group per non-empty cell.
        """
        if len(self) == 0:
            return np.array([], dtype="U1")
        spatial = encode_many(self.lats, self.lons, spatial_precision)
        temporal = bin_epochs(self.epochs, temporal_resolution)
        return np.char.add(np.char.add(spatial, "@"), temporal)

    def bin_ids(
        self, spatial_precision: int, temporal_resolution: TemporalResolution
    ) -> np.ndarray:
        """Per-record packed uint64 bin id (see :mod:`repro.geo.binning`).

        The integer form of :meth:`bin_keys`: ids map 1:1 to the
        composite labels and sort in the same order, but grouping them
        is integer factorization instead of string sorting — the hot
        form the columnar scan pipeline bins on.
        """
        return _bin_ids(
            self.lats, self.lons, self.epochs, spatial_precision, temporal_resolution
        )

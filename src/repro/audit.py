"""Cluster invariant auditing.

:func:`audit_cluster` walks a (quiesced) STASH cluster and checks every
structural invariant the design relies on.  The integration tests call
it after exercising the system; operators can call it any time — it
reads state only and raises :class:`AuditError` with a full finding list
on the first inconsistent cluster it sees.

Checked invariants:

1.  every cached cell key lives at the graph level its resolution maps to;
2.  the PLM tracks exactly the cells resident in each graph (no orphans,
    no ghosts), and its reverse index agrees with the forward map;
3.  every *local* cell is on the node the DHT assigns it;
4.  every PLM backing block exists in the storage catalog;
5.  cell summaries equal a fresh aggregation of their backing blocks
    (sampled, optionally exhaustive) — the cache never drifts from disk;
6.  guest-clique registry members refer to cells present in the guest
    graph (or already purged as a whole clique);
7.  per-node occupancy respects the eviction hard limit.
"""

from __future__ import annotations

import numpy as np

from repro.core.keys import CellKey
from repro.errors import ReproError


class AuditError(ReproError):
    """One or more cluster invariants are violated."""

    def __init__(self, findings: list[str]):
        self.findings = findings
        super().__init__(
            f"{len(findings)} invariant violation(s):\n  " + "\n  ".join(findings)
        )


def _audit_graph(node, graph, findings: list[str], is_local: bool) -> None:
    plm_keys: set[CellKey] = set()
    for level in graph.plm.tracked_levels():
        for key in list(graph.plm._by_level.get(level, {})):
            plm_keys.add(key)
            if not graph.contains(key):
                findings.append(
                    f"{graph.name}: PLM tracks {key} but the cell is absent"
                )
            if graph.space.level_of(key.resolution) != level:
                findings.append(
                    f"{graph.name}: {key} tracked at wrong level {level}"
                )
    for cell in graph.cells():
        if cell.key not in plm_keys:
            findings.append(f"{graph.name}: cell {cell.key} missing from PLM")
        level = graph.level_of(cell.key)
        if not graph.plm.contains(level, cell.key):
            findings.append(
                f"{graph.name}: cell {cell.key} not tracked at level {level}"
            )
        if is_local:
            owner = node.partitioner.node_for(cell.key.geohash)
            if owner != node.node_id:
                findings.append(
                    f"{graph.name}: cell {cell.key} owned by {owner}, "
                    f"cached on {node.node_id}"
                )
    # Reverse index agreement.
    for block_id, dependents in graph.plm._by_block.items():
        for key in dependents:
            level = graph.space.level_of(key.resolution)
            if not graph.plm.contains(level, key):
                findings.append(
                    f"{graph.name}: reverse index {block_id} -> {key} is stale"
                )


def _audit_cell_values(
    cluster, node, graph, findings: list[str], sample: int, rng
) -> None:
    from repro.data.statistics import SummaryVector
    from repro.storage.backend import scan_blocks
    from repro.query.model import AggregationQuery
    from repro.geo.temporal import TimeRange

    cells = list(graph.cells())
    if not cells:
        return
    if 0 < sample < len(cells):
        picked = [cells[int(i)] for i in rng.choice(len(cells), sample, replace=False)]
    else:
        picked = cells
    for cell in picked:
        blocks = [
            cluster.catalog.get_block(b) for b in cluster.catalog.blocks_for_cell(cell.key)
        ]
        blocks = [b for b in blocks if b is not None]
        if not blocks:
            if not cell.summary.is_empty:
                findings.append(
                    f"{graph.name}: {cell.key} non-empty but has no backing blocks"
                )
            continue
        probe = AggregationQuery(
            bbox=cell.key.bbox,
            time_range=cell.key.time_range,
            resolution=cell.key.resolution,
        )
        fresh, _stats = scan_blocks(blocks, probe)
        expected = fresh.get(
            cell.key, SummaryVector.empty(cluster.attribute_names)
        )
        if not cell.summary.approx_equal(expected, rel=1e-6):
            findings.append(
                f"{graph.name}: {cell.key} cached summary drifted from disk "
                f"(cached count={cell.summary.count}, disk count={expected.count})"
            )


def audit_cluster(cluster, value_sample: int = 16, seed: int = 0) -> int:
    """Audit every node; returns the number of cells value-checked.

    ``value_sample`` bounds the per-graph number of cells whose summaries
    are recomputed from storage (0 = skip value checks, negative =
    exhaustive).
    """
    cluster.start()
    findings: list[str] = []
    rng = np.random.default_rng(seed)
    checked = 0
    for node in cluster.nodes.values():
        _audit_graph(node, node.graph, findings, is_local=True)
        _audit_graph(node, node.guest, findings, is_local=False)
        if value_sample != 0:
            sample = 10**9 if value_sample < 0 else value_sample
            _audit_cell_values(cluster, node, node.graph, findings, sample, rng)
            _audit_cell_values(cluster, node, node.guest, findings, sample, rng)
            checked += min(sample, len(node.graph)) + min(sample, len(node.guest))
        # Guest registry members must be resident (or the clique purged).
        for root, entry in node.guest_cliques.entries.items():
            for member in entry["members"]:
                if not node.guest.contains(member):
                    findings.append(
                        f"{node.node_id}: guest clique {root} member {member} "
                        "missing from guest graph"
                    )
        if len(node.graph) > node.eviction.config.max_cells:
            findings.append(
                f"{node.node_id}: {len(node.graph)} cells exceed the "
                f"hard limit {node.eviction.config.max_cells}"
            )
    if findings:
        raise AuditError(findings)
    return checked

"""Command-line interface: run queries and regenerate paper experiments.

Examples::

    python -m repro dataset --records 50000 --days 3
    python -m repro query --engine stash --box 37,41,-109,-102 \
        --day 2013-02-03 --spatial 4 --heatmap temperature
    python -m repro experiment fig6a
    python -m repro experiment all --scale unit
    python -m repro bench kernels --quick
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Sequence

from repro.bench.harness import BenchScale, ExperimentResult

#: Experiment registry: name -> zero-arg-beyond-scale callable.
def _experiment_registry() -> dict[str, Callable[[BenchScale], ExperimentResult]]:
    from repro.bench import ablations, churn, experiments, faults

    return {
        "churn-recovery": churn.churn_recovery,
        "fault-recovery": faults.fault_crash_recovery,
        "fig6a": experiments.fig6a_latency_by_query_size,
        "fig6b": experiments.fig6b_throughput,
        "fig6c": experiments.fig6c_maintenance,
        "fig6d": experiments.fig6d_hotspot,
        "fig7a": lambda s: experiments.fig7ab_iterative_dicing(s, ascending=False),
        "fig7b": lambda s: experiments.fig7ab_iterative_dicing(s, ascending=True),
        "fig7c": experiments.fig7c_panning,
        "fig7d": lambda s: experiments.fig7de_zoom(s, "drill"),
        "fig7e": lambda s: experiments.fig7de_zoom(s, "roll"),
        "fig8a": experiments.fig8a_es_panning,
        "fig8b": lambda s: experiments.fig8bc_es_dicing(s, ascending=True),
        "fig8c": lambda s: experiments.fig8bc_es_dicing(s, ascending=False),
        "ablation-rollup": ablations.ablation_rollup,
        "ablation-dispersion": ablations.ablation_dispersion,
        "ablation-reroute": ablations.ablation_reroute_probability,
        "ablation-prefetch": ablations.ablation_prefetch,
        "ablation-client-graph": ablations.ablation_client_graph,
        "ablation-scaling": ablations.ablation_cluster_scaling,
        "ablation-capacity": ablations.ablation_cache_capacity,
        "sessions": ablations.experiment_realistic_sessions,
    }


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="STASH (CLUSTER 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ds = sub.add_parser("dataset", help="generate a synthetic NAM-like dataset")
    ds.add_argument("--records", type=int, default=50_000)
    ds.add_argument("--days", type=int, default=3)
    ds.add_argument("--seed", type=int, default=42)

    qp = sub.add_parser("query", help="run one aggregation query")
    qp.add_argument("--engine", choices=("stash", "basic", "elastic"), default="stash")
    qp.add_argument(
        "--box",
        default="37,41,-109,-102",
        help="south,north,west,east in degrees",
    )
    qp.add_argument("--day", default="2013-02-02", help="YYYY-MM-DD")
    qp.add_argument("--spatial", type=int, default=4, help="geohash precision")
    qp.add_argument(
        "--temporal",
        choices=("year", "month", "day", "hour"),
        default="day",
    )
    qp.add_argument("--records", type=int, default=50_000)
    qp.add_argument("--days", type=int, default=3)
    qp.add_argument("--seed", type=int, default=42)
    qp.add_argument("--nodes", type=int, default=16)
    qp.add_argument("--repeat", type=int, default=2, help="run N times (shows caching)")
    qp.add_argument("--heatmap", metavar="ATTR", help="render an ASCII heatmap")
    qp.add_argument("--json", action="store_true", help="print the JSON response")

    ex = sub.add_parser("experiment", help="regenerate a paper figure")
    ex.add_argument(
        "name",
        choices=sorted(_experiment_registry()) + ["all"],
        help="figure/ablation id",
    )
    ex.add_argument("--scale", choices=("unit", "default"), default="default")
    ex.add_argument("--save", action="store_true", help="persist to benchmarks/results/")

    tr = sub.add_parser("trace", help="record or replay a query trace")
    tr_sub = tr.add_subparsers(dest="trace_command", required=True)
    rec = tr_sub.add_parser("record", help="generate a workload and save it")
    rec.add_argument("path", help="output JSONL file")
    rec.add_argument(
        "--workload", choices=("pan-cloud", "hotspot", "zipf"), default="pan-cloud"
    )
    rec.add_argument(
        "--size", choices=("country", "state", "county", "city"), default="county"
    )
    rec.add_argument("--requests", type=int, default=100)
    rec.add_argument("--seed", type=int, default=42)
    rep = tr_sub.add_parser("replay", help="replay a trace against an engine")
    rep.add_argument("path", help="input JSONL file")
    rep.add_argument("--engine", choices=("stash", "basic", "elastic"), default="stash")
    rep.add_argument("--records", type=int, default=50_000)
    rep.add_argument("--days", type=int, default=3)
    rep.add_argument("--nodes", type=int, default=16)
    rep.add_argument("--concurrent", action="store_true")
    exp = tr_sub.add_parser(
        "export",
        help="run a workload with tracing on; export a Chrome/Perfetto trace",
    )
    exp.add_argument("output", help="output trace JSON (load in ui.perfetto.dev)")
    exp.add_argument("--engine", choices=("stash", "basic", "elastic"), default="stash")
    exp.add_argument(
        "--workload", choices=("pan-cloud", "hotspot", "zipf"), default="pan-cloud"
    )
    exp.add_argument(
        "--size", choices=("country", "state", "county", "city"), default="county"
    )
    exp.add_argument("--requests", type=int, default=20)
    exp.add_argument("--records", type=int, default=50_000)
    exp.add_argument("--days", type=int, default=3)
    exp.add_argument("--nodes", type=int, default=16)
    exp.add_argument("--seed", type=int, default=42)
    exp.add_argument("--concurrent", action="store_true")

    fa = sub.add_parser(
        "faults", help="validate or replay a fault-injection schedule"
    )
    fa_sub = fa.add_subparsers(dest="faults_command", required=True)
    val = fa_sub.add_parser("validate", help="parse and sanity-check a schedule")
    val.add_argument("path", help="fault schedule JSON file")
    frun = fa_sub.add_parser(
        "run", help="run a workload open-loop under a fault schedule"
    )
    frun.add_argument("path", help="fault schedule JSON file")
    frun.add_argument(
        "--engine", choices=("stash", "basic", "elastic"), default="stash"
    )
    frun.add_argument(
        "--workload", choices=("pan-cloud", "hotspot", "zipf"), default="hotspot"
    )
    frun.add_argument(
        "--size", choices=("country", "state", "county", "city"), default="county"
    )
    frun.add_argument("--requests", type=int, default=60)
    frun.add_argument("--records", type=int, default=50_000)
    frun.add_argument("--days", type=int, default=3)
    frun.add_argument("--nodes", type=int, default=16)
    frun.add_argument("--seed", type=int, default=42)
    frun.add_argument(
        "--rate", type=float, default=2.0, help="arrivals per simulated second"
    )
    frun.add_argument(
        "--rpc-timeout", type=float, default=0.35, help="per-leg RPC timeout (s)"
    )
    frun.add_argument(
        "--evaluate-timeout",
        type=float,
        default=1.5,
        help="client-side whole-query timeout (s)",
    )

    be = sub.add_parser(
        "bench", help="wall-clock micro-benchmarks of the hot-path kernels"
    )
    be_sub = be.add_subparsers(dest="bench_command", required=True)
    bk = be_sub.add_parser(
        "kernels",
        help="time eviction/touch/plan/aggregation kernels, write a JSON report",
    )
    bk.add_argument(
        "--quick", action="store_true",
        help="smaller sizes and dataset (the CI smoke configuration)",
    )
    bk.add_argument(
        "--sizes", help="comma-separated graph sizes overriding the sweep"
    )
    bk.add_argument("--repeats", type=int, default=5, help="best-of-N timing")
    bk.add_argument("--seed", type=int, default=42)
    bk.add_argument(
        "--output", default="BENCH_kernels.json", help="report path ('-' to skip)"
    )
    ch = be_sub.add_parser(
        "churn",
        help="membership churn: gossip recovery with repair vs cold restart",
    )
    ch.add_argument(
        "--quick", action="store_true",
        help="unit bench scale (the CI smoke configuration)",
    )
    ch.add_argument("--seed", type=int, default=42)
    ch.add_argument(
        "--output", default="BENCH_churn.json", help="report path ('-' to skip)"
    )
    bc = be_sub.add_parser(
        "check",
        help="regression sentinel: fresh kernel run vs a committed baseline",
    )
    bc.add_argument(
        "--baseline", default="BENCH_kernels.json", help="committed report to compare to"
    )
    bc.add_argument(
        "--threshold", type=float, default=None,
        help="fresh/baseline ratio that fails (default 1.5)",
    )
    bc.add_argument("--json", metavar="PATH", help="also dump the verdict as JSON")
    bs = be_sub.add_parser(
        "scale",
        help="nodes x users closed-loop sweep: throughput + latency SLOs, "
        "STASH vs elastic",
    )
    bs.add_argument(
        "--quick", action="store_true",
        help="tiny grid on the unit bench scale (the CI smoke configuration)",
    )
    bs.add_argument("--seed", type=int, default=0)
    bs.add_argument(
        "--nodes", help="comma-separated node counts overriding the sweep"
    )
    bs.add_argument(
        "--users", help="comma-separated concurrent-user counts overriding the sweep"
    )
    bs.add_argument(
        "--output", default="BENCH_scale.json", help="report path ('-' to skip)"
    )

    ep = sub.add_parser(
        "explain",
        help="replay one query with the flight recorder on; print its waterfall",
    )
    ep.add_argument("--engine", choices=("stash", "basic", "elastic"), default="stash")
    ep.add_argument(
        "--workload", choices=("pan-cloud", "hotspot", "zipf"), default="pan-cloud"
    )
    ep.add_argument(
        "--size", choices=("country", "state", "county", "city"), default="county"
    )
    ep.add_argument("--requests", type=int, default=20)
    ep.add_argument("--records", type=int, default=50_000)
    ep.add_argument("--days", type=int, default=3)
    ep.add_argument("--nodes", type=int, default=16)
    ep.add_argument("--seed", type=int, default=42)
    ep.add_argument(
        "--query", type=int, default=-1,
        help="workload index to explain (default: the slowest query)",
    )
    ep.add_argument(
        "--trace-out", metavar="PATH",
        help="also export the full run as a Chrome/Perfetto trace",
    )

    sl = sub.add_parser(
        "slo",
        help="run a session gesture mix; report per-class latency SLOs",
    )
    sl.add_argument("--engine", choices=("stash", "basic", "elastic"), default="stash")
    sl.add_argument("--requests", type=int, default=60)
    sl.add_argument("--seed", type=int, default=42)
    sl.add_argument(
        "--output", default="BENCH_slo.json", help="report path ('-' to skip)"
    )

    cf = sub.add_parser(
        "conform",
        help="replay randomized workloads against the brute-force oracle",
    )
    cf.add_argument("--seed", type=int, default=0)
    cf.add_argument(
        "--quick", action="store_true",
        help="small per-axis workloads (the CI smoke configuration)",
    )
    cf.add_argument(
        "--queries-per-axis", type=int, default=None,
        help="override the per-axis workload size",
    )
    cf.add_argument(
        "--axis", action="append", dest="axes", metavar="NAME",
        help="run only this axis (repeatable); default runs all",
    )
    cf.add_argument("--json", metavar="PATH", help="also dump the report as JSON")

    sv = sub.add_parser(
        "serve",
        help="run the cluster on real asyncio sockets; check vs the sim twin",
    )
    sv.add_argument("--nodes", type=int, default=3)
    sv.add_argument(
        "--workload", choices=("pan-cloud", "hotspot", "zipf"), default="pan-cloud"
    )
    sv.add_argument(
        "--size", choices=("country", "state", "county", "city"), default="county"
    )
    sv.add_argument("--requests", type=int, default=6)
    sv.add_argument("--records", type=int, default=20_000)
    sv.add_argument("--days", type=int, default=2)
    sv.add_argument("--seed", type=int, default=42)
    sv.add_argument(
        "--time-scale", type=float, default=None,
        help="wall seconds per simulated second (default from ServeConfig)",
    )
    sv.add_argument(
        "--budget", type=float, default=None,
        help="wall-clock budget for the whole run in seconds",
    )
    sv.add_argument(
        "--no-sim-check", action="store_true",
        help="skip the sim-twin byte-identity comparison",
    )
    sv.add_argument("--json", metavar="PATH", help="also dump the report as JSON")
    sv.add_argument(
        "--http", action="store_true",
        help="serve the HTTP query facade instead of replaying a workload",
    )
    sv.add_argument(
        "--http-backend", choices=("sim", "socket"), default="sim",
        help="facade backend: in-process simulated cluster or the real "
        "socket cluster (--nodes processes)",
    )
    sv.add_argument(
        "--port", type=int, default=0,
        help="HTTP port to bind (default: OS-assigned)",
    )
    sv.add_argument(
        "--duration", type=float, default=0.0,
        help="seconds to serve HTTP before exiting (0 = until interrupted)",
    )

    mt = sub.add_parser(
        "metrics", help="run a workload with periodic metric sampling"
    )
    mt.add_argument("--engine", choices=("stash", "basic", "elastic"), default="stash")
    mt.add_argument(
        "--workload", choices=("pan-cloud", "hotspot", "zipf"), default="pan-cloud"
    )
    mt.add_argument(
        "--size", choices=("country", "state", "county", "city"), default="county"
    )
    mt.add_argument("--requests", type=int, default=20)
    mt.add_argument("--records", type=int, default=50_000)
    mt.add_argument("--days", type=int, default=3)
    mt.add_argument("--nodes", type=int, default=16)
    mt.add_argument("--seed", type=int, default=42)
    mt.add_argument(
        "--interval", type=float, default=0.25, help="sample period (simulated s)"
    )
    mt.add_argument("--json", metavar="PATH", help="also dump all series as JSON")
    return parser


def _cmd_dataset(args: argparse.Namespace) -> int:
    from repro.data.generator import DatasetSpec, SyntheticNAMGenerator

    spec = DatasetSpec(
        num_records=args.records,
        start_day=(2013, 2, 1),
        num_days=args.days,
        seed=args.seed,
    )
    batch = SyntheticNAMGenerator(spec).generate()
    print(f"records:    {len(batch):,}")
    print(f"bytes:      {batch.nbytes:,}")
    print(f"lat range:  [{batch.lats.min():.2f}, {batch.lats.max():.2f}]")
    print(f"lon range:  [{batch.lons.min():.2f}, {batch.lons.max():.2f}]")
    for name in batch.attribute_names:
        values = batch.attributes[name]
        print(
            f"{name:>14}: mean={values.mean():8.2f}  "
            f"min={values.min():8.2f}  max={values.max():8.2f}"
        )
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    from repro.config import ClusterConfig, StashConfig
    from repro.data.generator import DatasetSpec, SyntheticNAMGenerator
    from repro.geo.bbox import BoundingBox
    from repro.geo.resolution import Resolution
    from repro.geo.temporal import TemporalResolution, TimeKey
    from repro.query.model import AggregationQuery

    try:
        south, north, west, east = (float(v) for v in args.box.split(","))
    except ValueError:
        print(f"error: --box must be south,north,west,east, got {args.box!r}",
              file=sys.stderr)
        return 2
    spec = DatasetSpec(
        num_records=args.records,
        start_day=(2013, 2, 1),
        num_days=args.days,
        seed=args.seed,
    )
    dataset = SyntheticNAMGenerator(spec).generate()
    config = StashConfig(cluster=ClusterConfig(num_nodes=args.nodes))

    from repro.bench.harness import make_system

    system = make_system(args.engine, dataset, config)
    query = AggregationQuery(
        bbox=BoundingBox(south, north, west, east),
        time_range=TimeKey.parse(args.day).epoch_range(),
        resolution=Resolution(
            args.spatial, TemporalResolution[args.temporal.upper()]
        ),
    )
    result = None
    for attempt in range(1, max(1, args.repeat) + 1):
        clone = AggregationQuery(
            bbox=query.bbox, time_range=query.time_range, resolution=query.resolution
        )
        result = system.run_query(clone)
        if hasattr(system, "drain"):
            system.drain()
        print(
            f"run {attempt}: {result.latency * 1e3:9.3f} ms  "
            f"cells={len(result.cells):5d}  observations={result.total_count:,}"
        )
        print(f"        provenance: {result.provenance}")
    assert result is not None
    if args.heatmap:
        from repro.client.render import render_ascii_heatmap

        print()
        print(render_ascii_heatmap(result, args.heatmap))
    if args.json:
        from repro.client.render import render_json

        print(render_json(result, indent=2))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    scale = BenchScale.unit() if args.scale == "unit" else BenchScale.default()
    names = sorted(registry) if args.name == "all" else [args.name]
    for name in names:
        result = registry[name](scale)
        print()
        print(result.format_table())
        from repro.bench.reporting import ascii_chart

        print()
        print(ascii_chart(result))
        if args.save:
            from repro.bench.reporting import save_result

            path = save_result(result)
            print(f"saved to {path}")
    return 0


def _generate_workload(workload: str, size_name: str, requests: int, seed: int):
    """Build the query list the ``trace``/``metrics`` commands run."""
    import numpy as np

    from repro.data.generator import NAM_DOMAIN
    from repro.workload.hotspot import hotspot_workload, zipf_region_workload
    from repro.workload.navigation import pan_cloud
    from repro.workload.queries import QuerySize

    rng = np.random.default_rng(seed)
    size = QuerySize(size_name)
    if workload == "pan-cloud":
        pans = 10
        return pan_cloud(
            rng, size, NAM_DOMAIN,
            num_centers=max(1, requests // pans),
            pans_per_center=pans,
        )[:requests]
    if workload == "hotspot":
        return hotspot_workload(rng, NAM_DOMAIN, requests, size=size)
    return zipf_region_workload(rng, NAM_DOMAIN, requests, size=size)


def _build_workload_system(args: argparse.Namespace, observability):
    """Dataset + system for the observability commands."""
    from repro.bench.harness import make_system
    from repro.config import ClusterConfig, StashConfig
    from repro.data.generator import DatasetSpec, SyntheticNAMGenerator

    spec = DatasetSpec(
        num_records=args.records, start_day=(2013, 2, 1), num_days=args.days
    )
    dataset = SyntheticNAMGenerator(spec).generate()
    config = StashConfig(
        cluster=ClusterConfig(num_nodes=args.nodes), observability=observability
    )
    return make_system(args.engine, dataset, config)


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.workload.trace import load_trace, replay_trace, save_trace

    if args.trace_command == "record":
        queries = _generate_workload(
            args.workload, args.size, args.requests, args.seed
        )
        count = save_trace(queries, args.path)
        print(f"wrote {count} queries to {args.path}")
        return 0

    if args.trace_command == "export":
        from repro.config import ObservabilityConfig
        from repro.obs import attribution_fractions, write_chrome_trace

        queries = _generate_workload(
            args.workload, args.size, args.requests, args.seed
        )
        system = _build_workload_system(args, ObservabilityConfig(trace=True))
        results = replay_trace(system, queries, concurrent=args.concurrent)
        system.drain()
        try:
            write_chrome_trace(system.tracer, args.output)
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
        print(
            f"traced {len(results)} queries on {args.engine}: "
            f"{len(system.tracer)} spans -> {args.output}"
        )
        if system.tracer.truncated:
            print("warning: span cap hit; trace is truncated")
        fractions = attribution_fractions(system.attributions.totals())
        if any(fractions.values()):
            print("critical-path latency attribution:")
            for category, fraction in sorted(fractions.items()):
                print(f"  {category:>9}: {fraction:7.2%}")
        return 0

    # replay
    queries = load_trace(args.path)
    from repro.config import ObservabilityConfig
    from repro.stats import percentile

    system = _build_workload_system(args, ObservabilityConfig())
    results = replay_trace(system, queries, concurrent=args.concurrent)
    latencies = [r.latency for r in results]
    total = system.timeline.total_duration()
    print(f"replayed {len(results)} queries on {args.engine}")
    print(f"  mean latency: {sum(latencies) / len(latencies) * 1e3:9.3f} ms")
    print(f"  p95 latency:  {percentile(latencies, 95.0) * 1e3:9.3f} ms")
    print(f"  makespan:     {total * 1e3:9.3f} ms "
          f"({len(results) / total:,.0f} queries/s)")
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    from repro.errors import FaultError
    from repro.faults.schedule import FaultSchedule

    try:
        schedule = FaultSchedule.load(args.path)
    except FaultError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2

    if args.faults_command == "validate":
        print(f"{args.path}: {len(schedule)} events, valid")
        for event in schedule:
            window = "" if event.until is None else f" until t={event.until}"
            target = event.node or f"{event.src or '*'}->{event.dst or '*'}"
            print(f"  t={event.at:<8g} {event.kind:<10} {target}{window}")
        return 0

    # run
    from repro.config import ClusterConfig, FaultConfig, StashConfig
    from repro.data.generator import DatasetSpec, SyntheticNAMGenerator

    queries = _generate_workload(args.workload, args.size, args.requests, args.seed)
    spec = DatasetSpec(
        num_records=args.records, start_day=(2013, 2, 1), num_days=args.days
    )
    dataset = SyntheticNAMGenerator(spec).generate()
    config = StashConfig(
        cluster=ClusterConfig(num_nodes=args.nodes),
        faults=FaultConfig(
            enabled=True,
            rpc_timeout=args.rpc_timeout,
            evaluate_timeout=args.evaluate_timeout,
            schedule=tuple(schedule),
        ),
    )
    from repro.bench.harness import make_system

    system = make_system(args.engine, dataset, config)
    try:
        results = system.run_open_loop(queries, args.rate, seed=args.seed)
    except FaultError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    system.drain()
    from repro.stats import percentile

    degraded = [r for r in results if r.degraded]
    latencies = [r.latency for r in results]
    print(f"ran {len(results)}/{len(queries)} queries on {args.engine} "
          f"under {len(schedule)} fault events")
    print(f"  mean latency:     {sum(latencies) / len(latencies) * 1e3:9.3f} ms")
    print(f"  p95 latency:      {percentile(latencies, 95.0) * 1e3:9.3f} ms")
    print(f"  degraded answers: {len(degraded)}")
    if degraded:
        print(f"  min completeness: {min(r.completeness for r in degraded):.3f}")
    print(f"  messages dropped: {system.network.messages_dropped}")
    print(f"  failovers:        {system.membership.failovers}")
    if system.fault_injector is not None:
        for at, description in system.fault_injector.applied:
            print(f"  applied t={at:<10.3f} {description}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    from repro.config import ObservabilityConfig
    from repro.obs import explain_result, write_chrome_trace
    from repro.workload.trace import replay_trace

    queries = _generate_workload(args.workload, args.size, args.requests, args.seed)
    system = _build_workload_system(
        args, ObservabilityConfig(trace=True, flight_recorder=True)
    )
    results = replay_trace(system, queries)
    system.drain()
    if not results:
        print("error: workload produced no results", file=sys.stderr)
        return 2
    if args.query >= 0:
        if args.query >= len(results):
            print(
                f"error: --query {args.query} out of range "
                f"(ran {len(results)} queries)",
                file=sys.stderr,
            )
            return 2
        picked = results[args.query]
    else:
        picked = max(results, key=lambda r: r.latency)
    print(explain_result(system, picked))
    if args.trace_out:
        try:
            write_chrome_trace(system.tracer, args.trace_out)
        except OSError as exc:
            print(f"error: cannot write {args.trace_out}: {exc}", file=sys.stderr)
            return 2
        print(f"\nwrote Chrome trace of the full run to {args.trace_out}")
    return 0


def _cmd_slo(args: argparse.Namespace) -> int:
    from repro.bench.slo import format_slo_report, run_slo, write_slo_report

    if args.requests <= 0:
        print(f"error: --requests must be positive, got {args.requests}",
              file=sys.stderr)
        return 2
    scale = BenchScale.unit().with_(seed=args.seed)
    report = run_slo(engine=args.engine, scale=scale, requests=args.requests)
    print(format_slo_report(report))
    if args.output != "-":
        try:
            write_slo_report(report, args.output)
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote report to {args.output}")
    return 0


def _cmd_bench_check(args: argparse.Namespace) -> int:
    import json

    from repro.bench.kernels import run_kernels
    from repro.bench.regression import (
        DEFAULT_THRESHOLD,
        compare_reports,
        format_check,
    )

    try:
        with open(args.baseline, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read baseline {args.baseline}: {exc}", file=sys.stderr)
        return 2
    # Re-run with the baseline's own configuration so every metric
    # lines up; run twice to measure this machine's re-run variance.
    sizes = tuple(baseline.get("sizes", ()))
    repeats = int(baseline.get("repeats", 5))
    seed = int(baseline.get("seed", 42))
    quick = bool(baseline.get("quick", False))
    if not sizes:
        print(f"error: baseline {args.baseline} has no sizes", file=sys.stderr)
        return 2
    fresh = run_kernels(sizes=sizes, repeats=repeats, seed=seed, quick=quick)
    rerun = run_kernels(sizes=sizes, repeats=repeats, seed=seed, quick=quick)
    threshold = DEFAULT_THRESHOLD if args.threshold is None else args.threshold
    verdict = compare_reports(baseline, fresh, rerun=rerun, threshold=threshold)
    print(format_check(verdict))
    if args.json:
        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(verdict, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote verdict to {args.json}")
    if verdict["status"] == "env-mismatch":
        return 2
    return 1 if verdict["status"] == "regression" else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.bench_command == "churn":
        return _cmd_bench_churn(args)
    if args.bench_command == "check":
        return _cmd_bench_check(args)
    if args.bench_command == "scale":
        return _cmd_bench_scale(args)
    from repro.bench.kernels import (
        DEFAULT_SIZES,
        QUICK_SIZES,
        format_report,
        run_kernels,
        write_report,
    )

    if args.sizes:
        try:
            sizes = tuple(int(v) for v in args.sizes.split(","))
        except ValueError:
            print(f"error: --sizes must be comma-separated ints, got {args.sizes!r}",
                  file=sys.stderr)
            return 2
        if any(size <= 0 for size in sizes):
            print("error: --sizes values must be positive", file=sys.stderr)
            return 2
    else:
        sizes = QUICK_SIZES if args.quick else DEFAULT_SIZES
    if args.repeats <= 0:
        print(f"error: --repeats must be positive, got {args.repeats}",
              file=sys.stderr)
        return 2
    report = run_kernels(
        sizes=sizes, repeats=args.repeats, seed=args.seed, quick=args.quick
    )
    print(format_report(report))
    if args.output != "-":
        try:
            write_report(report, args.output)
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote report to {args.output}")
    return 0


def _cmd_bench_churn(args: argparse.Namespace) -> int:
    import json

    from repro.bench.churn import churn_recovery
    from repro.bench.reporting import ascii_chart

    scale = BenchScale.unit() if args.quick else BenchScale.default()
    scale = scale.with_(seed=args.seed)
    result = churn_recovery(scale)
    print(result.format_table())
    print()
    print(ascii_chart(result))
    if not result.meta.get("warm_recovery_faster"):
        print(
            "warning: repair variant did not beat the cold restart "
            "(recovery_hit_rate_advantage="
            f"{result.meta.get('recovery_hit_rate_advantage')})",
            file=sys.stderr,
        )
    if args.output != "-":
        payload = {
            "name": result.name,
            "description": result.description,
            "series": result.series,
            "meta": result.meta,
        }
        try:
            with open(args.output, "w", encoding="utf-8") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote report to {args.output}")
    return 0


def _cmd_bench_scale(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.bench.scale import (
        ScaleSweep,
        format_scale_report,
        run_scale,
        write_scale_report,
    )

    sweep = ScaleSweep.quick() if args.quick else ScaleSweep.default()
    overrides = {}
    for name, raw in (("node_counts", args.nodes), ("user_counts", args.users)):
        if not raw:
            continue
        try:
            values = tuple(int(v) for v in raw.split(","))
        except ValueError:
            print(f"error: expected comma-separated ints, got {raw!r}",
                  file=sys.stderr)
            return 2
        if any(v <= 0 for v in values):
            print(f"error: {name} values must be positive", file=sys.stderr)
            return 2
        overrides[name] = values
    if overrides:
        sweep = dataclasses.replace(sweep, **overrides)
    report = run_scale(
        sweep, seed=args.seed, progress=lambda line: print(f"  {line}", flush=True)
    )
    print()
    print(format_scale_report(report))
    if args.output != "-":
        try:
            write_scale_report(report, args.output)
        except OSError as exc:
            print(f"error: cannot write {args.output}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote report to {args.output}")
    return 0


def _cmd_conform(args: argparse.Namespace) -> int:
    from repro.oracle import run_campaign
    from repro.oracle.conformance import AXES

    if args.axes:
        unknown = sorted(set(args.axes) - set(AXES) - {"metamorphic"})
        if unknown:
            print(
                f"error: unknown axis {unknown}; choose from "
                f"{sorted(AXES) + ['metamorphic']}",
                file=sys.stderr,
            )
            return 2
    report = run_campaign(
        seed=args.seed,
        quick=args.quick,
        queries_per_axis=args.queries_per_axis,
        axes=args.axes,
        progress=lambda line: print(f"  {line}", flush=True),
    )
    print()
    print(report.format())
    if args.json:
        import json

        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report.to_json_dict(), fh, indent=2, sort_keys=True)
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote report to {args.json}")
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.config import ClusterConfig, ServeConfig, StashConfig
    from repro.data.generator import DatasetSpec
    from repro.errors import ReproError
    from repro.serve import run_serve

    if args.nodes <= 0 or args.requests <= 0:
        print("error: --nodes and --requests must be positive", file=sys.stderr)
        return 2
    serve_cfg = ServeConfig()
    overrides = {}
    if args.time_scale is not None:
        overrides["time_scale"] = args.time_scale
    if args.budget is not None:
        overrides["wall_clock_budget"] = args.budget
    if args.http:
        overrides["http_port"] = args.port
    if overrides:
        serve_cfg = dataclasses.replace(serve_cfg, **overrides)
    config = StashConfig(
        cluster=ClusterConfig(num_nodes=args.nodes), serve=serve_cfg
    )
    spec = DatasetSpec(
        num_records=args.records,
        start_day=(2013, 2, 1),
        num_days=args.days,
        seed=args.seed,
    )
    if args.http:
        return _cmd_serve_http(args, config, spec)
    queries = _generate_workload(args.workload, args.size, args.requests, args.seed)
    try:
        report = run_serve(
            queries,
            spec,
            config,
            check_sim=not args.no_sim_check,
            progress=lambda line: print(f"  {line}", flush=True),
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    walls = [a["wall_latency_s"] for a in report["answers"]]
    print(
        f"served {report['queries']} queries over {report['transport']} "
        f"({report['codec']} codec) on {report['nodes']} node processes"
    )
    if walls:
        print(
            f"  wall latency: mean {sum(walls) / len(walls) * 1e3:8.1f} ms  "
            f"max {max(walls) * 1e3:8.1f} ms"
        )
    if report["sim_checked"]:
        verdict = "byte-identical" if report["ok"] else "DIVERGED"
        print(f"  sim twin: {verdict} "
              f"({len(report['divergences'])} divergences)")
        for divergence in report["divergences"][:10]:
            print(f"    query {divergence['index']}: {divergence['problem']}")
    if args.json:
        import json

        try:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(report, fh, indent=2, sort_keys=True)
                fh.write("\n")
        except OSError as exc:
            print(f"error: cannot write {args.json}: {exc}", file=sys.stderr)
            return 2
        print(f"wrote report to {args.json}")
    return 0 if report["ok"] else 1


def _cmd_serve_http(args: argparse.Namespace, config, spec) -> int:
    """``repro serve --http``: the facade over a sim or socket backend."""
    import time as _time

    from repro.data.generator import SyntheticNAMGenerator
    from repro.errors import ReproError
    from repro.serve.http import SimBackend, SocketBackend, StashHttpServer

    launcher = None
    try:
        if args.http_backend == "socket":
            from repro.serve.cluster import ServeCluster

            launcher = ServeCluster(spec, config)
            addresses = launcher.start()
            launcher.broadcast_peers(addresses)
            backend = SocketBackend(launcher.node_ids, addresses, config)
            print(
                f"socket cluster up: {len(launcher.node_ids)} node processes",
                flush=True,
            )
        else:
            from repro.core.cluster import StashCluster

            batch = SyntheticNAMGenerator(spec).generate()
            backend = SimBackend(StashCluster(batch, config))
            print(
                f"simulated cluster up: {config.cluster.num_nodes} nodes, "
                f"{spec.num_records} records",
                flush=True,
            )
        server = StashHttpServer(backend, config)
        server.start()
        print(f"HTTP facade ({backend.name} backend) listening on {server.url}",
              flush=True)
        try:
            if args.duration > 0:
                _time.sleep(args.duration)
            else:
                while True:
                    _time.sleep(3600)
        except KeyboardInterrupt:
            print("interrupted; shutting down", flush=True)
        server.stop()
        backend.close()
        return 0
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if launcher is not None:
            launcher.stop()


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.config import ObservabilityConfig
    from repro.workload.trace import replay_trace

    if args.interval <= 0:
        print(f"error: --interval must be positive, got {args.interval}",
              file=sys.stderr)
        return 2
    queries = _generate_workload(args.workload, args.size, args.requests, args.seed)
    system = _build_workload_system(
        args, ObservabilityConfig(sample_interval=args.interval)
    )
    results = replay_trace(system, queries)
    system.drain()
    print(
        f"ran {len(results)} queries on {args.engine}; sampled every "
        f"{args.interval}s of simulated time"
    )
    print(system.metrics.format_table())
    if args.json:
        import json

        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(system.metrics.to_dict(), fh, indent=2, sort_keys=True)
        print(f"wrote series to {args.json}")
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "dataset":
        return _cmd_dataset(args)
    if args.command == "query":
        return _cmd_query(args)
    if args.command == "experiment":
        return _cmd_experiment(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "faults":
        return _cmd_faults(args)
    if args.command == "bench":
        return _cmd_bench(args)
    if args.command == "explain":
        return _cmd_explain(args)
    if args.command == "slo":
        return _cmd_slo(args)
    if args.command == "conform":
        return _cmd_conform(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "metrics":
        return _cmd_metrics(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())

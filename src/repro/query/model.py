"""Query and result types (paper section II-B).

An :class:`AggregationQuery` is the backend form of the SQL shape the
paper gives: aggregate every attribute over the records inside
``Query_Polygon`` x ``Query_Time``, grouped by (spatial_resolution,
temporal_resolution) bins.  The result is one
:class:`~repro.data.statistics.SummaryVector` per non-empty bin — the
"set of pixel-level aggregations" the front-end renders.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.core.keys import CellKey
from repro.data.statistics import SummaryVector
from repro.errors import QueryError
from repro.geo.bbox import BoundingBox
from repro.geo.cover import covering_cells, covering_count
from repro.geo.resolution import Resolution
from repro.geo.temporal import TimeRange

_query_ids = itertools.count()

#: Canonical provenance vocabulary every engine's ``evaluate`` reply uses.
#: - ``cells_from_cache``: result cells answered from an in-memory cache
#:   (STASH graph / guest graph / ES request cache).
#: - ``cells_from_rollup``: cells recomputed from cached finer-resolution
#:   cells (STASH roll-up; always 0 for the baselines).
#: - ``cells_from_disk``: cells that required scanning raw storage.
#: - ``disk_blocks_read``: storage blocks (or ES chunks) fetched from disk.
#: - ``rerouted``: 1 when a replica/guest graph served the query.
PROVENANCE_KEYS = (
    "cells_from_cache",
    "cells_from_rollup",
    "cells_from_disk",
    "disk_blocks_read",
    "rerouted",
)


@dataclass(frozen=True)
class AggregationQuery:
    """One visual-exploration query against the backend."""

    bbox: BoundingBox
    time_range: TimeRange
    resolution: Resolution
    #: Attributes to aggregate; None means every stored attribute.
    attributes: tuple[str, ...] | None = None
    #: Optional polygonal refinement of the area (the paper's
    #: Query_Polygon); when set, the footprint keeps only the cells whose
    #: centers fall inside it.  ``bbox`` must enclose the polygon — use
    #: :meth:`for_polygon` to construct these consistently.
    polygon: "object | None" = None
    #: Workload class of the gesture that produced this query ("pan",
    #: "zoom", "drill", or "other") — the grouping key for per-class
    #: latency histograms and SLO targets.  Excluded from equality so a
    #: tagged query answers identically to an untagged twin.
    kind: str = field(default="other", compare=False)
    query_id: int = field(default_factory=lambda: next(_query_ids))
    #: Memoized :meth:`footprint` result.  A query object crosses several
    #: evaluation sites (client session, coordinator, guest helper) that
    #: each need the same cell cover; materializing it once removes the
    #: dominant repeated planning cost.  Excluded from eq/hash/repr.
    _footprint_cache: "list[CellKey] | None" = field(
        default=None, init=False, compare=False, repr=False
    )

    #: Safety valve against continental covers at street precision.
    MAX_FOOTPRINT_CELLS = 2_000_000

    @staticmethod
    def for_polygon(
        polygon,
        time_range: TimeRange,
        resolution: Resolution,
        attributes: tuple[str, ...] | None = None,
    ) -> "AggregationQuery":
        """A query over an arbitrary simple polygon."""
        return AggregationQuery(
            bbox=polygon.bbox,
            time_range=time_range,
            resolution=resolution,
            attributes=attributes,
            polygon=polygon,
        )

    def footprint_size(self) -> int:
        """Number of cells this query touches.

        For rectangles this is pure arithmetic; a polygon requires
        materializing its cover once.
        """
        temporal = len(self.time_range.covering_keys(self.resolution.temporal))
        if self.polygon is None:
            spatial = covering_count(self.bbox, self.resolution.spatial)
        else:
            spatial = len(self._spatial_cover())
        return spatial * temporal

    def _spatial_cover(self) -> list[str]:
        if self.polygon is None:
            return covering_cells(
                self.bbox, self.resolution.spatial, max_cells=self.MAX_FOOTPRINT_CELLS
            )
        from repro.geo.polygon import covering_cells_polygon

        return covering_cells_polygon(
            self.polygon, self.resolution.spatial, max_cells=self.MAX_FOOTPRINT_CELLS
        )

    def footprint(self) -> list[CellKey]:
        """Every cell key the query's extent covers at its resolution.

        This is the unit of work for both the cache lookup and the raw
        scan: the query answer is exactly the summaries of these cells
        (empty ones omitted).

        The result is memoized on the (frozen) query: coordinators, guest
        helpers, and client sessions all re-derive the same footprint for
        one query object, so it is computed once and shared.  Callers must
        treat the returned list as read-only.
        """
        if self._footprint_cache is not None:
            return self._footprint_cache
        temporal = self.time_range.covering_keys(self.resolution.temporal)
        if self.polygon is None:
            # Rectangles: the cover size is pure arithmetic, so reject
            # oversized footprints before materializing anything.
            bounding_size = covering_count(
                self.bbox, self.resolution.spatial
            ) * len(temporal)
            if bounding_size > self.MAX_FOOTPRINT_CELLS:
                raise QueryError(
                    f"query footprint of {bounding_size} cells exceeds "
                    f"{self.MAX_FOOTPRINT_CELLS}; lower the resolution"
                )
        spatial = self._spatial_cover()
        if self.polygon is not None:
            # Polygons: the bbox cover wildly overestimates a thin lasso,
            # so the cap applies to the *filtered* footprint (the spatial
            # cover itself is capped inside covering_cells_polygon).
            footprint_size = len(spatial) * len(temporal)
            if footprint_size > self.MAX_FOOTPRINT_CELLS:
                raise QueryError(
                    f"polygon footprint of {footprint_size} cells exceeds "
                    f"{self.MAX_FOOTPRINT_CELLS}; lower the resolution"
                )
        footprint = [
            CellKey(geohash=s, time_key=t) for s in spatial for t in temporal
        ]
        object.__setattr__(self, "_footprint_cache", footprint)
        return footprint

    def snapped_bbox(self) -> BoundingBox:
        """The query box snapped outward to cell boundaries.

        Cached cells are aggregates over *full* cell extents (that is what
        makes them reusable across queries, paper section V-B), so query
        semantics snap the requested rectangle to the covering cells'
        union.
        """
        cells = covering_cells(
            self.bbox, self.resolution.spatial, max_cells=self.MAX_FOOTPRINT_CELLS
        )
        from repro.geo.geohash import bbox as geohash_bbox

        first, last = geohash_bbox(cells[0]), geohash_bbox(cells[-1])
        return first.union_bounds(last)

    def snapped_time_range(self) -> TimeRange:
        """The query time range snapped outward to temporal bin boundaries."""
        keys = self.time_range.covering_keys(self.resolution.temporal)
        return TimeRange.from_keys(keys)

    # -- navigation helpers (OLAP operators, paper section V-B) ------------

    def panned(self, dlat: float, dlon: float) -> "AggregationQuery":
        """The query after a pan gesture (polygon moves with the box)."""
        return AggregationQuery(
            bbox=self.bbox.translated(dlat, dlon),
            time_range=self.time_range,
            resolution=self.resolution,
            attributes=self.attributes,
            polygon=None if self.polygon is None else self.polygon.translated(dlat, dlon),
            kind="pan",
        )

    def diced(self, area_factor: float) -> "AggregationQuery":
        """The query after shrinking/growing the selection area."""
        return AggregationQuery(
            bbox=self.bbox.scaled(area_factor),
            time_range=self.time_range,
            resolution=self.resolution,
            attributes=self.attributes,
            polygon=None if self.polygon is None else self.polygon.scaled(area_factor),
            kind="zoom",
        )

    def at_resolution(self, resolution: Resolution) -> "AggregationQuery":
        """The query after a drill-down/roll-up to another resolution."""
        return AggregationQuery(
            bbox=self.bbox,
            time_range=self.time_range,
            resolution=resolution,
            attributes=self.attributes,
            polygon=self.polygon,
            kind="drill",
        )

    def clone(self) -> "AggregationQuery":
        """An identical query with a fresh ``query_id``.

        Re-submitting the *same* object would reuse its id (and memoized
        footprint) across runs; experiments and correctness harnesses
        that replay a query clone it so each submission is a distinct
        request.
        """
        return AggregationQuery(
            bbox=self.bbox,
            time_range=self.time_range,
            resolution=self.resolution,
            attributes=self.attributes,
            polygon=self.polygon,
            kind=self.kind,
        )

    # -- partitions (conformance harness + divergence shrinking) -----------

    def split_spatial(self) -> list["AggregationQuery"]:
        """Partition this query into two sub-queries along a cell boundary.

        The halves' footprints partition this query's footprint exactly
        (cell covers nest on geohash grid lines), which is what makes
        query-split additivity — ``answer(Q) == answer(A) ∪ answer(B)``
        for disjoint ``A``, ``B`` — a checkable metamorphic relation and a
        sound shrinking step for minimal-failing-query search.  Returns
        ``[]`` when the cover is a single cell column/row that cannot be
        split, or for polygon queries (their covers are not rectangles).
        """
        if self.polygon is not None:
            return []
        from repro.geo.geohash import bbox as geohash_bbox

        cover = self._spatial_cover()
        if len(cover) < 2:
            return []
        boxes = {cell: geohash_bbox(cell) for cell in cover}
        wests = sorted({box.west for box in boxes.values()})
        souths = sorted({box.south for box in boxes.values()})
        if len(wests) >= 2:
            boundary = wests[len(wests) // 2]
            low = [c for c in cover if boxes[c].west < boundary]
            high = [c for c in cover if boxes[c].west >= boundary]
        elif len(souths) >= 2:
            boundary = souths[len(souths) // 2]
            low = [c for c in cover if boxes[c].south < boundary]
            high = [c for c in cover if boxes[c].south >= boundary]
        else:
            return []
        out = []
        for cells in (low, high):
            south = min(boxes[c].south for c in cells)
            north = max(boxes[c].north for c in cells)
            west = min(boxes[c].west for c in cells)
            east = max(boxes[c].east for c in cells)
            out.append(
                AggregationQuery(
                    bbox=BoundingBox(south, north, west, east),
                    time_range=self.time_range,
                    resolution=self.resolution,
                    attributes=self.attributes,
                )
            )
        return out

    def split_temporal(self) -> list["AggregationQuery"]:
        """Partition this query into two halves along a temporal bin edge.

        Complements :meth:`split_spatial`; returns ``[]`` when the time
        range covers a single bin.
        """
        keys = self.time_range.covering_keys(self.resolution.temporal)
        if len(keys) < 2:
            return []
        mid = len(keys) // 2
        return [
            AggregationQuery(
                bbox=self.bbox,
                time_range=TimeRange.from_keys(list(half)),
                resolution=self.resolution,
                attributes=self.attributes,
                polygon=self.polygon,
            )
            for half in (keys[:mid], keys[mid:])
        ]


@dataclass
class QueryResult:
    """Backend answer: per-cell summaries plus evaluation provenance."""

    query: AggregationQuery
    cells: dict[CellKey, SummaryVector]
    #: Simulated seconds the evaluation took end-to-end.
    latency: float = 0.0
    #: Provenance counters; every engine emits :data:`PROVENANCE_KEYS`.
    provenance: dict[str, int] = field(default_factory=dict)
    #: Critical-path latency attribution (seconds per category, summing
    #: to ``latency``); None unless tracing was enabled for the run.
    attribution: dict[str, float] | None = None
    #: Fraction of the query footprint actually answered.  1.0 for a
    #: full answer; < 1.0 when failure recovery returned a degraded
    #: partial answer (unreachable cells are omitted, never faked).
    completeness: float = 1.0

    @property
    def degraded(self) -> bool:
        """True when the answer is an explicit partial (completeness < 1)."""
        return self.completeness < 1.0

    def __len__(self) -> int:
        return len(self.cells)

    def __iter__(self) -> Iterator[CellKey]:
        return iter(self.cells)

    @property
    def total_count(self) -> int:
        """Total observations aggregated across all result cells."""
        return sum(vec.count for vec in self.cells.values())

    def overall_summary(self) -> SummaryVector:
        """All result cells merged into one summary (the map legend)."""
        if not self.cells:
            raise QueryError("result has no cells to merge")
        return SummaryVector.merge_all(list(self.cells.values()))

    def matches(self, other: "QueryResult", rel: float = 1e-9) -> bool:
        """Value equality with fp tolerance (for correctness testing)."""
        if set(self.cells) != set(other.cells):
            return False
        return all(
            vec.approx_equal(other.cells[key], rel=rel)
            for key, vec in self.cells.items()
        )

    def to_json_dict(self) -> dict:
        """JSON-serializable body for the visualization front-end."""
        out = {
            "query_id": self.query.query_id,
            "resolution": str(self.query.resolution),
            "latency": self.latency,
            "provenance": dict(self.provenance),
            "cells": {str(key): vec.to_json_dict() for key, vec in self.cells.items()},
        }
        if self.attribution is not None:
            out["attribution"] = dict(self.attribution)
        if self.completeness < 1.0:
            out["completeness"] = self.completeness
        return out

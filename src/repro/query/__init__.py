"""Spatiotemporal aggregation queries and their results."""

from repro.query.model import AggregationQuery, QueryResult

__all__ = ["AggregationQuery", "QueryResult"]
